"""Unit tests for workload generation."""

import random

import pytest

from repro.workload.generator import WorkloadGenerator, WorkloadSpec, body_for


def make(spec=None, objects=None, seed=1):
    return WorkloadGenerator(
        spec or WorkloadSpec(),
        objects or [f"o{i}" for i in range(10)],
        random.Random(seed),
    )


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(read_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadSpec(ops_per_txn=0)
    with pytest.raises(ValueError):
        WorkloadSpec(zipf_s=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(mean_interarrival=0)


def test_generator_needs_objects():
    with pytest.raises(ValueError):
        WorkloadGenerator(WorkloadSpec(), [], random.Random(1))


def test_program_shape():
    generator = make(WorkloadSpec(ops_per_txn=3))
    program = generator.next_program()
    assert len(program) == 3
    kinds = {kind for kind, _obj in program}
    assert kinds <= {"r", "w"}
    objects = [obj for _k, obj in program]
    assert len(set(objects)) == 3  # distinct objects
    assert objects == sorted(objects)  # canonical lock order


def test_ops_capped_by_object_count():
    generator = make(WorkloadSpec(ops_per_txn=50), objects=["a", "b"])
    assert len(generator.next_program()) == 2


def test_read_fraction_respected_statistically():
    generator = make(WorkloadSpec(read_fraction=0.9, ops_per_txn=1))
    kinds = [generator.next_program()[0][0] for _ in range(500)]
    reads = kinds.count("r")
    assert 400 <= reads <= 490


def test_pure_read_and_pure_write_mixes():
    reader = make(WorkloadSpec(read_fraction=1.0, ops_per_txn=2))
    assert all(k == "r" for k, _ in reader.next_program())
    writer = make(WorkloadSpec(read_fraction=0.0, ops_per_txn=2))
    assert all(k == "w" for k, _ in writer.next_program())


def test_zipf_skews_towards_first_objects():
    generator = make(WorkloadSpec(zipf_s=1.5, ops_per_txn=1))
    picks = [generator.pick_object() for _ in range(1000)]
    first = picks.count("o0")
    last = picks.count("o9")
    assert first > 5 * max(last, 1)


def test_zipf_draw_sequence_is_pinned():
    """The skewed sampler is part of every sharded experiment's
    determinism contract: one named RandomStreams substream, one
    ``random()`` per draw, CDF inversion.  This pins the exact
    sequence so a sampler change cannot silently reshuffle every
    scaling benchmark."""
    from repro.sim.rng import RandomStreams

    generator = WorkloadGenerator(
        WorkloadSpec(zipf_s=1.2, ops_per_txn=2),
        [f"o{i}" for i in range(50)],
        RandomStreams(42).stream("workload-p1"),
    )
    assert [generator.pick_object() for _ in range(12)] == [
        "o1", "o0", "o22", "o8", "o19", "o32",
        "o1", "o36", "o1", "o14", "o0", "o5",
    ]
    assert generator.next_program() == [("r", "o0"), ("r", "o48")]
    assert generator.next_program() == [("r", "o0"), ("r", "o4")]


def test_zipf_sampler_matches_random_choices():
    """The precomputed-CDF fast path consumes the rng identically to
    ``random.choices`` — same draws, one uniform per pick."""
    objects = [f"o{i}" for i in range(40)]
    ours = make(WorkloadSpec(zipf_s=0.8), objects=objects, seed=13)
    reference = random.Random(13)
    expected = [
        reference.choices(objects, weights=ours._weights, k=1)[0]
        for _ in range(200)
    ]
    assert [ours.pick_object() for _ in range(200)] == expected


def test_interarrival_is_exponential_with_given_mean():
    generator = make(WorkloadSpec(mean_interarrival=4.0))
    samples = [generator.next_interarrival() for _ in range(2000)]
    mean = sum(samples) / len(samples)
    assert 3.5 <= mean <= 4.5


def test_same_seed_same_stream():
    a, b = make(seed=7), make(seed=7)
    assert [a.next_program() for _ in range(10)] == \
           [b.next_program() for _ in range(10)]


def test_body_for_executes_program():
    from repro import Cluster

    cluster = Cluster(processors=3, seed=1)
    cluster.place("a", holders=[1, 2, 3], initial=10)
    cluster.place("b", holders=[1, 2, 3], initial=20)
    cluster.start()
    body = body_for([("r", "a"), ("w", "b")], tag="t")
    outcome = cluster.submit(1, body)
    cluster.run(until=40.0)
    committed, result = outcome.value
    assert committed and result == 10  # returns the last read
    value, _ = cluster.processor(2).store.peek("b")
    assert isinstance(value, str) and value.startswith("t#")


def test_interarrival_same_seed_same_sequence():
    a, b = make(seed=9), make(seed=9)
    sequence = [a.next_interarrival() for _ in range(20)]
    assert sequence == [b.next_interarrival() for _ in range(20)]
    assert all(delay > 0 for delay in sequence)
    # and the stream is the plain expovariate draw on the shared rng,
    # so interleaving with program draws stays reproducible
    reference = make(seed=9)
    assert reference.rng.expovariate(1.0 / reference.spec.mean_interarrival) \
        == sequence[0]


def test_interarrival_sequences_differ_across_seeds():
    a, b = make(seed=1), make(seed=2)
    assert [a.next_interarrival() for _ in range(5)] != \
           [b.next_interarrival() for _ in range(5)]
