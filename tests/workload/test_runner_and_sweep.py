"""Unit tests for the experiment runner and sweeps."""

import pytest

from repro.workload import (
    ExperimentSpec,
    WorkloadSpec,
    build_cluster,
    grid,
    run_experiment,
    sweep,
    sweep_protocols,
)


def small_spec(**kwargs):
    defaults = dict(
        processors=3, objects=4, seed=2, duration=120.0, grace=30.0,
        workload=WorkloadSpec(read_fraction=0.8, ops_per_txn=2,
                              mean_interarrival=10.0),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def test_build_cluster_places_objects_round_robin():
    cluster = build_cluster(small_spec(copies_per_object=2))
    assert cluster.placement.copies("o0") == {1, 2}
    assert cluster.placement.copies("o1") == {2, 3}
    assert cluster.placement.copies("o2") == {3, 1}


def test_build_cluster_full_replication_default():
    cluster = build_cluster(small_spec())
    assert cluster.placement.copies("o0") == {1, 2, 3}


def test_copies_out_of_range_rejected():
    with pytest.raises(ValueError):
        build_cluster(small_spec(copies_per_object=9))


def test_run_experiment_produces_work():
    result = run_experiment(small_spec())
    assert result.committed > 0
    assert result.metrics.logical_reads > 0
    assert result.network["sent"] > 0
    assert 0.0 < result.commit_rate <= 1.0


def test_run_experiment_check_flag():
    result = run_experiment(small_spec(duration=60.0, check=True))
    assert result.one_copy_ok is True


def test_derived_metrics():
    result = run_experiment(small_spec())
    assert result.reads_per_logical_read == pytest.approx(1.0)
    assert result.writes_per_logical_write == pytest.approx(3.0)
    mix = result.accesses_per_operation
    assert 1.0 <= mix <= 3.0
    assert result.messages_per_committed_txn > 0


def test_experiment_is_deterministic():
    a = run_experiment(small_spec())
    b = run_experiment(small_spec())
    assert (a.committed, a.aborted) == (b.committed, b.aborted)
    assert a.network["sent"] == b.network["sent"]


def test_sweep_over_spec_field():
    results = sweep(small_spec(duration=60.0), "seed", [1, 2])
    assert len(results) == 2
    assert results[0][0] == 1 and results[1][0] == 2


def test_sweep_over_workload_field():
    results = sweep(small_spec(duration=60.0), "workload.read_fraction",
                    [0.5, 1.0])
    pure_reads = results[1][1]
    assert pure_reads.metrics.logical_writes == 0


def test_sweep_unknown_axis_rejected():
    with pytest.raises(AttributeError):
        sweep(small_spec(), "bogus", [1])
    with pytest.raises(AttributeError):
        sweep(small_spec(), "workload.bogus", [1])


def test_sweep_protocols_pairs_seeds():
    results = sweep_protocols(small_spec(duration=60.0),
                              ["virtual-partitions", "rowa"])
    assert set(results) == {"virtual-partitions", "rowa"}
    # identical workload stream: same number of attempts
    vp, rowa = results["virtual-partitions"], results["rowa"]
    assert vp.attempted == rowa.attempted


def test_grid_cartesian():
    results = grid(small_spec(duration=40.0),
                   {"seed": [1, 2], "objects": [2, 3]})
    assert len(results) == 4
    points = {(p["seed"], p["objects"]) for p, _ in results}
    assert points == {(1, 2), (1, 3), (2, 2), (2, 3)}


def test_failures_callback_runs():
    seen = []

    def inject(cluster):
        seen.append(True)
        cluster.injector.crash_at(10.0, 3)

    result = run_experiment(small_spec(failures=inject, retries=1))
    assert seen == [True]
    assert result.committed > 0  # 2-of-3 majority still works


# -- open-loop driver and the client tier ------------------------------------


def test_open_loop_produces_work_and_latency_samples():
    result = run_experiment(small_spec(open_loop=True, txns_per_client=4,
                                       retries=3))
    assert result.committed > 0
    summary = result.latency_summary()
    assert summary["count"] > 0
    assert result.latency_p99 >= result.latency_p50 >= 0.0


def test_closed_and_open_loop_draw_rng_identically(monkeypatch):
    """Satellite pin: both loop modes consume the workload rng in the
    same per-client order (interarrival, program, interarrival, ...),
    so switching modes never perturbs what work arrives — only when it
    runs.  (The closed loop's byte-identity to the pre-client-tier
    driver is pinned by the golden-trace test.)"""
    from repro.workload.generator import WorkloadGenerator

    created = []
    original_init = WorkloadGenerator.__init__
    original_interarrival = WorkloadGenerator.next_interarrival
    original_program = WorkloadGenerator.next_program

    def recording_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.draws = []
        created.append(self)

    def recording_interarrival(self):
        value = original_interarrival(self)
        self.draws.append(("ia", value))
        return value

    def recording_program(self):
        program = original_program(self)
        self.draws.append(("prog", tuple(program)))
        return program

    monkeypatch.setattr(WorkloadGenerator, "__init__", recording_init)
    monkeypatch.setattr(WorkloadGenerator, "next_interarrival",
                        recording_interarrival)
    monkeypatch.setattr(WorkloadGenerator, "next_program",
                        recording_program)

    run_experiment(small_spec(txns_per_client=5, retries=3))
    closed = [generator.draws for generator in created]
    created.clear()
    run_experiment(small_spec(txns_per_client=5, retries=3,
                              open_loop=True))
    opened = [generator.draws for generator in created]

    assert closed == opened
    for draws in closed:
        kinds = [kind for kind, _ in draws]
        assert kinds == ["ia", "prog"] * 5


def test_session_run_collects_client_metrics():
    from repro.client.session import SessionSpec

    result = run_experiment(small_spec(
        txns_per_client=5, retries=3,
        session=SessionSpec(cache_capacity=4, cache_policy="write-back",
                            lease_duration=5.0)))
    counters = result.registry.snapshot()["counters"]
    assert counters["client.programs"] == 15
    assert counters["client.programs_committed"] > 0
    assert result.local_read_fraction > 0
    assert result.messages_per_client_program > 0


def test_disabled_session_spec_is_no_session():
    from repro.client.session import SessionSpec

    result = run_experiment(small_spec(session=SessionSpec(),
                                       txns_per_client=2))
    assert "client.programs" not in result.registry.snapshot()["counters"]
