"""Unit tests for the experiment runner and sweeps."""

import pytest

from repro.workload import (
    ExperimentSpec,
    WorkloadSpec,
    build_cluster,
    grid,
    run_experiment,
    sweep,
    sweep_protocols,
)


def small_spec(**kwargs):
    defaults = dict(
        processors=3, objects=4, seed=2, duration=120.0, grace=30.0,
        workload=WorkloadSpec(read_fraction=0.8, ops_per_txn=2,
                              mean_interarrival=10.0),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def test_build_cluster_places_objects_round_robin():
    cluster = build_cluster(small_spec(copies_per_object=2))
    assert cluster.placement.copies("o0") == {1, 2}
    assert cluster.placement.copies("o1") == {2, 3}
    assert cluster.placement.copies("o2") == {3, 1}


def test_build_cluster_full_replication_default():
    cluster = build_cluster(small_spec())
    assert cluster.placement.copies("o0") == {1, 2, 3}


def test_copies_out_of_range_rejected():
    with pytest.raises(ValueError):
        build_cluster(small_spec(copies_per_object=9))


def test_run_experiment_produces_work():
    result = run_experiment(small_spec())
    assert result.committed > 0
    assert result.metrics.logical_reads > 0
    assert result.network["sent"] > 0
    assert 0.0 < result.commit_rate <= 1.0


def test_run_experiment_check_flag():
    result = run_experiment(small_spec(duration=60.0, check=True))
    assert result.one_copy_ok is True


def test_derived_metrics():
    result = run_experiment(small_spec())
    assert result.reads_per_logical_read == pytest.approx(1.0)
    assert result.writes_per_logical_write == pytest.approx(3.0)
    mix = result.accesses_per_operation
    assert 1.0 <= mix <= 3.0
    assert result.messages_per_committed_txn > 0


def test_experiment_is_deterministic():
    a = run_experiment(small_spec())
    b = run_experiment(small_spec())
    assert (a.committed, a.aborted) == (b.committed, b.aborted)
    assert a.network["sent"] == b.network["sent"]


def test_sweep_over_spec_field():
    results = sweep(small_spec(duration=60.0), "seed", [1, 2])
    assert len(results) == 2
    assert results[0][0] == 1 and results[1][0] == 2


def test_sweep_over_workload_field():
    results = sweep(small_spec(duration=60.0), "workload.read_fraction",
                    [0.5, 1.0])
    pure_reads = results[1][1]
    assert pure_reads.metrics.logical_writes == 0


def test_sweep_unknown_axis_rejected():
    with pytest.raises(AttributeError):
        sweep(small_spec(), "bogus", [1])
    with pytest.raises(AttributeError):
        sweep(small_spec(), "workload.bogus", [1])


def test_sweep_protocols_pairs_seeds():
    results = sweep_protocols(small_spec(duration=60.0),
                              ["virtual-partitions", "rowa"])
    assert set(results) == {"virtual-partitions", "rowa"}
    # identical workload stream: same number of attempts
    vp, rowa = results["virtual-partitions"], results["rowa"]
    assert vp.attempted == rowa.attempted


def test_grid_cartesian():
    results = grid(small_spec(duration=40.0),
                   {"seed": [1, 2], "objects": [2, 3]})
    assert len(results) == 4
    points = {(p["seed"], p["objects"]) for p, _ in results}
    assert points == {(1, 2), (1, 3), (2, 2), (2, 3)}


def test_failures_callback_runs():
    seen = []

    def inject(cluster):
        seen.append(True)
        cluster.injector.crash_at(10.0, 3)

    result = run_experiment(small_spec(failures=inject, retries=1))
    assert seen == [True]
    assert result.committed > 0  # 2-of-3 majority still works
