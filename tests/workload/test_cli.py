"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_crash, _parse_partition, build_parser, main


def test_parse_partition():
    when, blocks = _parse_partition("1,2,3|4,5@50")
    assert when == 50.0
    assert blocks == [[1, 2, 3], [4, 5]]


def test_parse_partition_rejects_garbage():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_partition("nope")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_partition("|@5")


def test_parse_crash():
    assert _parse_crash("4@30") == (30.0, 4)
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_crash("4-30")


def test_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["run"])
    assert args.protocol == "virtual-partitions"
    assert args.processors == 5
    assert args.cc == "2pl"


def test_run_command_prints_table(capsys):
    code = main(["run", "--duration", "60", "--processors", "3",
                 "--objects", "3", "--check"])
    assert code == 0
    out = capsys.readouterr().out
    assert "virtual-partitions" in out
    assert "committed" in out


def test_run_with_failures(capsys):
    code = main(["run", "--duration", "80", "--processors", "3",
                 "--objects", "3", "--retries", "2",
                 "--partition", "1,2|3@20", "--heal-at", "60",
                 "--crash", "3@70", "--recover", "3@75"])
    assert code == 0
    assert "committed" in capsys.readouterr().out


def test_run_with_tso(capsys):
    code = main(["run", "--duration", "60", "--processors", "3",
                 "--objects", "3", "--cc", "tso"])
    assert code == 0


def test_compare_command(capsys):
    code = main(["compare", "--protocols", "virtual-partitions,rowa",
                 "--duration", "60", "--processors", "3", "--objects", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rowa" in out and "virtual-partitions" in out


def test_scenario_command(capsys):
    code = main(["scenario", "example1", "--flavor", "naive"])
    assert code == 0
    out = capsys.readouterr().out
    assert "example1" in out and "naive" in out


def test_unknown_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "paxos"])


def test_trace_command(tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    code = main(["trace", "example2", "--out", str(out_path), "--analyze"])
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "view formations" in out

    from repro.obs.export import read_jsonl

    events = read_jsonl(out_path)
    assert events
    etypes = {event.etype for event in events}
    # view-formation phases, message traffic, and txn outcomes all land
    assert "vp.invite" in etypes and "vp.commit" in etypes
    assert "msg.send" in etypes and "msg.recv" in etypes
    assert etypes & {"txn.commit", "txn.abort"}


def test_trace_command_naive_flavor(tmp_path):
    out_path = tmp_path / "naive.jsonl"
    code = main(["trace", "example1", "--flavor", "naive",
                 "--out", str(out_path)])
    assert code == 0
    assert out_path.exists()


def test_metrics_command(capsys):
    import json

    code = main(["metrics", "--duration", "60", "--processors", "3",
                 "--objects", "3"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counters"]["txn.committed"] > 0
    assert "txn.latency" in payload["histograms"]
    assert any(key.startswith("msg.kind.") for key in payload["counters"])
