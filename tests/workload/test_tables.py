"""Unit tests for the ASCII table renderer."""

from repro.workload.tables import format_cell, render_series, render_table


def test_format_cell_types():
    assert format_cell(True) == "yes"
    assert format_cell(False) == "no"
    assert format_cell(3) == "3"
    assert format_cell(3.14159) == "3.14"
    assert format_cell(12.345) == "12.3"
    assert format_cell(123456.0) == "123,456"
    assert format_cell(float("nan")) == "-"
    assert format_cell("text") == "text"


def test_render_table_alignment():
    table = render_table(
        ["name", "value"],
        [["alpha", 1], ["b", 22222]],
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1, "all rows must be equal width"
    assert "| alpha | 1     |" in table
    assert "| b     | 22222 |" in table


def test_render_table_no_title():
    table = render_table(["h"], [["x"]])
    assert table.startswith("+")


def test_render_series_greppable():
    series = render_series("vp", [1, 2], [0.5, 0.75],
                           x_name="n", y_name="cost")
    lines = series.splitlines()
    assert lines[0].startswith("# series: vp")
    assert lines[1] == "vp\t1\t0.5"
    assert lines[2] == "vp\t2\t0.75"
