"""Parallel sweep engine: ``workers=N`` must change nothing but
wall-clock.  Every deterministic output — committed/aborted counts,
protocol metrics, message-cost counters, the registry snapshot — is
compared between the serial path and the process pool."""

import pytest

from repro.workload import (
    ExperimentSpec,
    WorkloadSpec,
    averaged,
    grid,
    run_experiment,
    run_many,
    sweep,
    sweep_protocols,
)


def small_spec(**kwargs):
    defaults = dict(
        processors=3, objects=4, seed=2, duration=80.0, grace=20.0,
        workload=WorkloadSpec(read_fraction=0.8, ops_per_txn=2,
                              mean_interarrival=10.0),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def _committed_for_seed(seed: int) -> float:
    """Module-level so ``averaged(..., workers>1)`` can pickle it."""
    return float(run_experiment(small_spec(seed=seed)).committed)


def test_run_many_preserves_submission_order():
    specs = [small_spec(seed=seed) for seed in (7, 3, 11)]
    results = run_many(specs, workers=2)
    serial = [run_experiment(spec) for spec in specs]
    for got, want in zip(results, serial):
        assert got.fingerprint() == want.fingerprint()


def test_run_many_serial_path_keeps_live_cluster():
    results = run_many([small_spec()], workers=4)  # single spec → serial
    assert results[0].cluster is not None
    parallel = run_many([small_spec(), small_spec(seed=5)], workers=2)
    assert all(result.cluster is None for result in parallel)


def test_sweep_parallel_equals_serial():
    base = small_spec()
    serial = sweep(base, "seed", [1, 2, 3, 4], workers=1)
    parallel = sweep(base, "seed", [1, 2, 3, 4], workers=4)
    assert [value for value, _ in serial] == [v for v, _ in parallel]
    for (_, a), (_, b) in zip(serial, parallel):
        assert a.fingerprint() == b.fingerprint()
        assert a.events_dispatched == b.events_dispatched > 0


def test_grid_parallel_equals_serial():
    base = small_spec()
    axes = {"seed": [1, 2], "workload.read_fraction": [0.5, 0.9]}
    serial = grid(base, axes, workers=1)
    parallel = grid(base, axes, workers=4)
    assert [point for point, _ in serial] == [p for p, _ in parallel]
    for (_, a), (_, b) in zip(serial, parallel):
        assert a.fingerprint() == b.fingerprint()


def test_sweep_protocols_parallel_equals_serial():
    base = small_spec()
    protocols = ["virtual-partitions", "rowa", "quorum"]
    serial = sweep_protocols(base, protocols, workers=1)
    parallel = sweep_protocols(base, protocols, workers=4)
    assert list(serial) == list(parallel) == protocols
    for name in protocols:
        assert serial[name].fingerprint() == parallel[name].fingerprint()


def test_crashing_child_surfaces_exception():
    """A spec that raises in the worker re-raises in the parent rather
    than hanging the pool (copies > processors is rejected at cluster
    build time)."""
    specs = [small_spec(seed=1), small_spec(seed=2, copies_per_object=99)]
    with pytest.raises(ValueError, match="copies_per_object"):
        run_many(specs, workers=2)


def test_averaged_parallel_equals_serial():
    seeds = [1, 2, 3, 4]
    serial = averaged(_committed_for_seed, seeds, workers=1)
    parallel = averaged(_committed_for_seed, seeds, workers=4)
    assert serial == parallel > 0


def test_fingerprint_ignores_wall_clock():
    from dataclasses import replace

    result = run_experiment(small_spec())
    faster = replace(result, wall_seconds=result.wall_seconds * 100)
    assert result.fingerprint() == faster.fingerprint()
    assert "wall_seconds" not in result.fingerprint()
