"""Tests for the campaign hunter: conviction, shrinking, replay."""

import json

import pytest

from repro.workload.hunt import (
    HuntConfig,
    campaign_spec,
    hunt,
    plan_campaigns,
    replay_artifact,
    verdict_of,
)
from repro.workload.runner import run_experiment


def test_plan_campaigns_deterministic():
    cfg = HuntConfig(campaigns=5, seed=3)
    assert plan_campaigns(cfg) == plan_campaigns(cfg)


def test_plan_campaigns_vary_with_seed():
    one = plan_campaigns(HuntConfig(campaigns=3, seed=1))
    two = plan_campaigns(HuntConfig(campaigns=3, seed=2))
    assert one != two


def test_campaign_schedules_differ_between_campaigns():
    plans = plan_campaigns(HuntConfig(campaigns=3, seed=0))
    schedules = [actions for _seed, actions in plans]
    assert schedules[0] != schedules[1] != schedules[2]


def test_naive_view_canary_convicts(tmp_path):
    """The acceptance canary: with the fixed default seed, a small
    hunt budget convicts naive-view's stale-view 1SR violation, the
    schedule shrinks, and the artifact replays deterministically."""
    report = hunt(HuntConfig(protocol="naive-view", campaigns=30, seed=0,
                             stop_after=1, workers=1),
                  out_dir=tmp_path)
    assert not report.survived, "naive-view must be convicted"
    finding = report.findings[0]
    assert "1SR" in finding.verdict or "auditor" in finding.verdict
    assert finding.shrunk is not None
    assert len(finding.shrunk) <= len(finding.actions)
    assert finding.shrunk_verdict is not None, "shrunken repro must still fail"
    # the artifact is a self-contained deterministic repro
    verdict_a, _ = replay_artifact(finding.artifact)
    verdict_b, result = replay_artifact(finding.artifact)
    assert verdict_a == verdict_b == finding.shrunk_verdict
    data = json.loads(open(finding.artifact).read())
    assert data["protocol"] == "naive-view"
    assert len(data["actions"]) == len(finding.shrunk)


def test_virtual_partitions_survives_the_same_hunt():
    """Paired check: the VP protocol under the same seed and a larger
    budget produces zero findings (the full 200-campaign sweep runs in
    CI's hunt-smoke job)."""
    report = hunt(HuntConfig(protocol="virtual-partitions", campaigns=40,
                             seed=0, stop_after=0, shrink_budget=0,
                             workers=1))
    assert report.survived, [f.verdict for f in report.findings]
    assert report.campaigns_run == 40


def test_verdict_of_prefers_auditor_violations():
    class FakeResult:
        audit_violations = ({"invariant": "S2", "time": 1.0, "pid": 3,
                             "detail": "boom"},)
        one_copy_ok = True

    verdict = verdict_of(FakeResult())
    assert verdict is not None and "S2" in verdict


def test_verdict_of_inconclusive_check_is_not_a_failure():
    class FakeResult:
        audit_violations = ()
        one_copy_ok = None

    assert verdict_of(FakeResult()) is None


def test_campaign_spec_arms_audit_and_check():
    cfg = HuntConfig()
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    spec = campaign_spec(cfg, actions, seed)
    assert spec.audit and spec.check
    assert spec.protocol == cfg.protocol


# -- sharded-topology hunts --------------------------------------------------


def test_campaign_spec_carries_placement():
    cfg = HuntConfig(placement="hash-ring", processors=6, objects=12)
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    spec = campaign_spec(cfg, actions, seed)
    assert spec.placement == "hash-ring"
    assert spec.copies_per_object == cfg.copies_per_object


def test_vp_survives_sharded_hunt():
    """The pinned sharded regression campaign: the VP protocol on a
    hash-ring sharded 6-node topology (degree 3 — most objects have
    copies on only half the cluster) survives the fixed-seed nemesis
    sweep with zero auditor/1SR findings."""
    report = hunt(HuntConfig(protocol="virtual-partitions", processors=6,
                             objects=12, copies_per_object=3,
                             placement="hash-ring", campaigns=25, seed=0,
                             stop_after=0, shrink_budget=0, workers=1))
    assert report.survived, [f.verdict for f in report.findings]
    assert report.campaigns_run == 25


def test_naive_view_sharded_canary_convicts(tmp_path):
    """The sharded hunt has teeth: on a tight sharded topology the
    naive-view strawman is convicted of a 1SR violation, and the
    artifact records the placement so the repro replays sharded."""
    report = hunt(HuntConfig(protocol="naive-view", processors=4,
                             objects=6, copies_per_object=3,
                             placement="hash-ring", campaigns=10, seed=0,
                             stop_after=1, shrink_budget=0, workers=1),
                  out_dir=tmp_path)
    assert not report.survived
    finding = report.findings[0]
    assert finding.campaign == 6
    assert "1SR" in finding.verdict
    data = json.loads(open(finding.artifact).read())
    assert data["placement"] == "hash-ring"
    verdict, _result = replay_artifact(finding.artifact)
    assert verdict == finding.verdict


def test_load_artifact_defaults_placement_for_old_artifacts(tmp_path):
    """Artifacts written before sharding existed have no placement key
    and must load as the legacy full-map layout."""
    from repro.workload.hunt import HuntFinding, load_artifact, write_artifact

    cfg = HuntConfig()
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    finding = HuntFinding(campaign=0, seed=seed, verdict="x",
                          actions=actions)
    path = tmp_path / "old.json"
    write_artifact(path, cfg, finding)
    data = json.loads(path.read_text())
    del data["placement"]
    path.write_text(json.dumps(data))
    loaded_cfg, _seed, _actions, _data = load_artifact(path)
    assert loaded_cfg.placement is None


# -- client-tier (cache + lease) hunts ---------------------------------------


def test_campaign_spec_carries_session():
    cfg = HuntConfig(cache_capacity=4, cache_policy="write-back",
                     lease_duration=5.0)
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    spec = campaign_spec(cfg, actions, seed)
    assert spec.session is not None
    assert spec.session.cache_capacity == 4
    assert spec.session.cache_policy == "write-back"
    assert spec.session.lease_duration == 5.0
    # the default config keeps the raw client tier (golden-trace path)
    assert campaign_spec(HuntConfig(), actions, seed).session is None


def test_vp_survives_lease_armed_hunt():
    """The pinned client-tier regression campaign: with write-back
    caching and 5.0-time-unit leases armed, the auditor's lease-rule /
    lease-expired / lease-staleness checks ride every campaign of the
    fixed-seed nemesis sweep — and the VP protocol plus the
    epoch-revoking session survive with zero findings."""
    report = hunt(HuntConfig(protocol="virtual-partitions", campaigns=40,
                             seed=0, stop_after=0, shrink_budget=0, workers=1,
                             cache_capacity=4, cache_policy="write-back",
                             lease_duration=5.0))
    assert report.survived, [f.verdict for f in report.findings]
    assert report.campaigns_run == 40


def test_lease_armed_campaign_exercises_the_client_tier():
    """The survival above is not vacuous: the first campaign's client
    counters show leases granted and conservatively revoked, write-back
    flushes, and locally served reads."""
    cfg = HuntConfig(protocol="virtual-partitions", campaigns=1, seed=0,
                     cache_capacity=4, cache_policy="write-back",
                     lease_duration=5.0)
    (seed, actions), = plan_campaigns(cfg)[:1]
    result = run_experiment(campaign_spec(cfg, actions, seed))
    assert verdict_of(result) is None
    counters = result.registry.snapshot()["counters"]
    assert counters["client.lease.granted"] > 0
    assert counters["client.lease.revoked"] + counters[
        "client.lease.invalidated"] > 0
    assert counters["client.flush_writes"] > 0
    assert result.local_read_fraction > 0


def test_load_artifact_defaults_session_for_old_artifacts(tmp_path):
    """Artifacts written before the client tier existed have no session
    keys and must load with caching and leases off."""
    from repro.workload.hunt import HuntFinding, load_artifact, write_artifact

    cfg = HuntConfig()
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    finding = HuntFinding(campaign=0, seed=seed, verdict="x",
                          actions=actions)
    path = tmp_path / "old.json"
    write_artifact(path, cfg, finding)
    data = json.loads(path.read_text())
    for key in ("cache_capacity", "cache_policy", "lease_duration"):
        del data[key]
    path.write_text(json.dumps(data))
    loaded_cfg, _seed, _actions, _data = load_artifact(path)
    assert loaded_cfg.cache_capacity == 0
    assert loaded_cfg.lease_duration == 0.0


# -- reshard-armed hunts -----------------------------------------------------


def test_campaign_spec_carries_reshard_schedule():
    from repro.shard import ReshardAction
    from repro.workload.hunt import reshard_schedule

    cfg = HuntConfig(processors=9, placement="hash-ring",
                     reshard_at=30.0, reshard_spares=2)
    assert reshard_schedule(cfg) == (
        ReshardAction(time=30.0, add=(8, 9)),)
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    spec = campaign_spec(cfg, actions, seed)
    assert spec.reshard == reshard_schedule(cfg)
    # the default config builds no reshard machinery (golden-trace path)
    assert campaign_spec(HuntConfig(), actions, seed).reshard is None


def test_reshard_schedule_requires_a_base_ring():
    from repro.workload.hunt import reshard_schedule

    with pytest.raises(ValueError, match="base ring"):
        reshard_schedule(HuntConfig(processors=4, reshard_at=10.0,
                                    reshard_spares=4))


def test_artifact_round_trips_reshard_schedule(tmp_path):
    from repro.workload.hunt import HuntFinding, load_artifact, write_artifact

    cfg = HuntConfig(processors=9, placement="hash-ring",
                     reshard_at=30.0, reshard_spares=2,
                     reshard_guarded=False)
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    finding = HuntFinding(campaign=0, seed=seed, verdict="x",
                          actions=actions)
    path = tmp_path / "reshard.json"
    write_artifact(path, cfg, finding)
    data = json.loads(path.read_text())
    assert data["reshard_actions"] == [
        {"time": 30.0, "add": [8, 9], "guarded": False,
         "coordinator": None}]
    loaded_cfg, _seed, _actions, _data = load_artifact(path)
    assert loaded_cfg.reshard_at == 30.0
    assert loaded_cfg.reshard_spares == 2
    assert loaded_cfg.reshard_guarded is False


def test_load_artifact_defaults_reshard_for_old_artifacts(tmp_path):
    """Artifacts written before online resharding existed have no
    reshard keys and must load with the migration machinery off."""
    from repro.workload.hunt import HuntFinding, load_artifact, write_artifact

    cfg = HuntConfig()
    (seed, actions), = plan_campaigns(HuntConfig(campaigns=1))[:1]
    finding = HuntFinding(campaign=0, seed=seed, verdict="x",
                          actions=actions)
    path = tmp_path / "old.json"
    write_artifact(path, cfg, finding)
    data = json.loads(path.read_text())
    for key in ("reshard_at", "reshard_spares", "reshard_guarded",
                "reshard_actions"):
        del data[key]
    path.write_text(json.dumps(data))
    loaded_cfg, _seed, _actions, _data = load_artifact(path)
    assert loaded_cfg.reshard_at == 0.0
    assert loaded_cfg.reshard_spares == 0
    assert loaded_cfg.reshard_guarded is True


def test_vp_survives_reshard_armed_hunt():
    """Placement migrations raced against the full nemesis diet: the
    fixed-seed sweep expands a 9-processor hash ring onto 2 held-out
    spares at t=30 in every campaign, and the guarded cutover survives
    with zero auditor findings and zero 1SR violations."""
    report = hunt(HuntConfig(protocol="virtual-partitions", campaigns=8,
                             processors=9, objects=12, copies_per_object=3,
                             placement="hash-ring", seed=0, stop_after=0,
                             shrink_budget=0, workers=1,
                             reshard_at=30.0, reshard_spares=2))
    assert report.survived, [f.verdict for f in report.findings]
    assert report.campaigns_run == 8


# -- regressions for the protocol bugs the hunter caught ---------------------


@pytest.mark.parametrize("campaign", [160, 188, 191])
def test_vp_hunter_regression_campaigns_stay_clean(campaign):
    """Campaigns that convicted the VP protocol before its fixes:

    * 188/191 — a processor whose acceptance arrived after the 2delta
      window joined a committed view that excluded it (S2); fixed by
      the membership check in Monitor-VP-Creations.
    * 160 — a partition change during vote collection force-aborted the
      coordinator's own transaction, which then decided commit (R4/2PC
      atomicity); fixed by the poisoned-transaction guard in
      end_transaction.
    """
    cfg = HuntConfig(protocol="virtual-partitions", campaigns=200, seed=0)
    seed, actions = plan_campaigns(cfg)[campaign]
    result = run_experiment(campaign_spec(cfg, actions, seed))
    assert verdict_of(result) is None, result.audit_violations
