"""Protocol-task-level tests: creation races, stale messages, timers.

These drive the Figs. 4–8 tasks through engineered message sequences —
concurrent initiators, lost commits, stale probes — and check the
arbitration rules the paper relies on.
"""

from repro import Cluster, VpId


def build(n=4, seed=0, **kwargs):
    cluster = Cluster(processors=n, seed=seed, **kwargs)
    cluster.place("x", holders=list(range(1, n + 1)), initial=0)
    cluster.start()
    return cluster


def test_concurrent_initiators_highest_id_wins():
    """Fig. 5 line 14: when several processors attempt creation at
    once, only the highest identifier's initiator commits a view."""
    cluster = build()
    cluster.run(until=5.0)
    # Force three processors to attempt creation simultaneously.
    for pid in (1, 2, 3):
        cluster.protocol(pid).create_new_vp()
    cluster.run(until=5.0 + cluster.config.liveness_bound)
    ids = {cluster.protocol(p).current_partition for p in cluster.pids}
    assert len(ids) == 1 and None not in ids
    final = ids.pop()
    # The surviving id was minted by the highest-pid initiator among
    # the simultaneous attempts (ties break on pid in the ≺ order).
    assert final.pid == 3


def test_invitation_with_lower_id_is_refused():
    cluster = build()
    cluster.run(until=5.0)
    state = cluster.protocol(2).state
    before = state.cur_id
    # p2 receives a stale invitation (lower than its max-id).
    cluster.processors[1].send(2, "newvp", {"id": VpId(0, 1)})
    cluster.run(until=10.0)
    assert cluster.protocol(2).state.cur_id == before
    assert cluster.protocol(2).assigned


def test_commit_for_stale_id_is_ignored():
    cluster = build()
    cluster.run(until=5.0)
    state = cluster.protocol(2).state
    before_view = set(state.lview)
    cluster.processors[1].send(2, "commit", {
        "id": VpId(0, 1), "view": [1, 2], "previous_map": {},
    })
    cluster.run(until=10.0)
    assert set(cluster.protocol(2).state.lview) == before_view


def test_acceptance_departs_current_partition():
    """Fig. 6 line 7: accepting an invitation means departing — the
    processor is unassigned until the commit arrives (S3's ordering)."""
    cluster = build()
    cluster.run(until=5.0)
    huge = VpId(99, 1)
    # Deliver an invitation from p1 without any initiator running: p2
    # accepts, departs, and sets its 3δ timer.
    cluster.processors[1].send(2, "newvp", {"id": huge})
    cluster.run(until=6.5)  # invitation delivered at ~6.0
    assert not cluster.protocol(2).assigned
    assert cluster.protocol(2).state.max_id == huge
    # No commit ever comes; the timer fires and p2 re-creates with an
    # even higher id, dragging everyone into a fresh partition.
    cluster.run(until=6.5 + 3 * cluster.config.liveness_bound)
    assert cluster.protocol(2).assigned
    assert cluster.protocol(2).state.cur_id > huge


def test_probe_with_stale_id_is_skipped():
    """Fig. 8: v ≺ cur-id → skip (an old delayed message)."""
    cluster = build()
    cluster.run(until=5.0)
    created_before = cluster.total_metrics().vp_created
    cluster.processors[1].send(2, "probe",
                               {"from": 1, "v": VpId(0, 1), "m": 99})
    cluster.run(until=10.0)
    assert cluster.total_metrics().vp_created == created_before
    assert cluster.protocol(2).assigned


def test_probe_with_higher_id_triggers_merge():
    """Fig. 8: cur-id ≺ v proves cross-partition communication."""
    cluster = build()
    cluster.run(until=5.0)
    old = cluster.protocol(2).state.cur_id
    cluster.processors[1].send(2, "probe",
                               {"from": 1, "v": VpId(50, 1), "m": 0})
    cluster.run(until=5.0 + cluster.config.liveness_bound)
    new = cluster.protocol(2).state.cur_id
    assert new > VpId(50, 1), "merge must out-number the probed partition"


def test_ack_with_wrong_sequence_is_ignored():
    """Fig. 7 line 16: only acks for the CURRENT probe round count —
    a stale ack must not mask a dead processor."""
    cluster = build()
    cluster.run(until=5.0)
    # Craft a stale ack from p4 to p1 with an old sequence number, then
    # crash p4; p1's next round must still detect the silence.
    cluster.injector.crash_at(6.0, 4)
    cluster.processors[4].send(1, "probe-ack", {"from": 4, "m": 999_999})
    cluster.run(until=6.0 + cluster.config.liveness_bound)
    assert 4 not in cluster.protocol(1).view


def test_unassigned_processor_does_not_answer_probes():
    """Fig. 8's outer guard: only assigned processors acknowledge."""
    cluster = build()
    cluster.run(until=5.0)
    cluster.protocol(2).state.depart()
    acks_from_p2 = []
    cluster.network.tap = (
        lambda m: acks_from_p2.append(m)
        if m.kind == "probe-ack" and m.src == 2 else None
    )
    cluster.processors[1].send(2, "probe", {
        "from": 1, "v": cluster.protocol(1).state.cur_id, "m": 12345,
    })
    cluster.run(until=9.0)
    assert not any(m.payload["m"] == 12345 for m in acks_from_p2), (
        "an unassigned processor answered a probe"
    )
    cluster.network.tap = None
    # The system self-heals: p2's silence drags everyone (p2 included)
    # into a fresh partition.
    cluster.run(until=5.0 + 2 * cluster.config.liveness_bound)
    assert cluster.protocol(1).assigned and cluster.protocol(2).assigned


def test_view_history_records_every_joined_partition():
    cluster = build()
    cluster.injector.partition_at(5.0, [{1, 2}, {3, 4}])
    cluster.injector.heal_all_at(60.0)
    cluster.run(until=120.0)
    state = cluster.protocol(1).state
    assert state.cur_id in state.view_history
    assert state.view_history[state.cur_id] == frozenset(state.lview)
    assert len(state.view_history) >= 3  # boot, split, merge
