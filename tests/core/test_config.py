"""Unit tests for protocol configuration and derived constants."""

import pytest

from repro.core.config import (
    CATCHUP_FULL,
    CATCHUP_LOG,
    INIT_PREVIOUS,
    INIT_READ_ALL,
    ProtocolConfig,
)


def test_defaults_are_valid():
    config = ProtocolConfig()
    assert config.delta == 1.0
    assert config.pi == 10.0
    assert config.init_strategy == INIT_READ_ALL
    assert config.catchup == CATCHUP_FULL


def test_derived_waits_scale_with_delta():
    config = ProtocolConfig(delta=2.0, pi=20.0)
    assert config.invite_wait == pytest.approx(4.0, rel=1e-2)
    assert config.commit_wait == pytest.approx(6.0, rel=1e-2)
    assert config.probe_ack_wait == pytest.approx(4.0, rel=1e-2)


def test_waits_are_strictly_beyond_round_trips():
    """A reply can legally arrive at exactly 2 delta; the timers must not
    fire before it (the paper's 'within the time limit' is inclusive)."""
    config = ProtocolConfig(delta=1.0)
    assert config.invite_wait > 2 * config.delta
    assert config.commit_wait > 3 * config.delta
    assert config.probe_ack_wait > 2 * config.delta


def test_liveness_bound_formula():
    """Δ = π + 8δ from §5."""
    config = ProtocolConfig(delta=0.5, pi=7.0)
    assert config.liveness_bound == pytest.approx(7.0 + 8 * 0.5)


def test_pi_must_exceed_ack_collection():
    with pytest.raises(ValueError):
        ProtocolConfig(delta=1.0, pi=2.0)
    with pytest.raises(ValueError):
        ProtocolConfig(delta=1.0, pi=1.5)


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(delta=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(init_strategy="bogus")
    with pytest.raises(ValueError):
        ProtocolConfig(catchup="bogus")
    with pytest.raises(ValueError):
        ProtocolConfig(lock_timeout_deltas=0)


def test_optimization_switches():
    config = ProtocolConfig(init_strategy=INIT_PREVIOUS, catchup=CATCHUP_LOG,
                            split_off_fastpath=True, weakened_r4=True)
    assert config.init_strategy == INIT_PREVIOUS
    assert config.catchup == CATCHUP_LOG
    assert config.split_off_fastpath
    assert config.weakened_r4


def test_timeouts_in_delta_units():
    config = ProtocolConfig(delta=2.0, pi=20.0, lock_timeout_deltas=10.0,
                            access_timeout_deltas=12.0)
    assert config.lock_timeout == 20.0
    assert config.access_timeout == 24.0


def test_frozen():
    config = ProtocolConfig()
    with pytest.raises(AttributeError):
        config.delta = 9.0  # type: ignore[misc]
