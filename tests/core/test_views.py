"""Unit tests for copy placement and the weighted majority rule (R1)."""

import pytest

from repro.core.views import CopyPlacement


@pytest.fixture()
def placement():
    p = CopyPlacement()
    p.place("x", holders=[1, 2, 3])                 # equal weights
    p.place("a", holders={1: 2, 4: 1})              # Example 2's a², a
    p.place("big", holders=[2, 3], size=500)
    return p


def test_copies_and_weights(placement):
    assert placement.copies("x") == {1, 2, 3}
    assert placement.weight("x", 2) == 1
    assert placement.weight("x", 99) == 0
    assert placement.weight("a", 1) == 2
    assert placement.total_weight("a") == 3


def test_unweighted_majority(placement):
    assert placement.accessible("x", {1, 2})
    assert not placement.accessible("x", {1})
    assert placement.accessible("x", {1, 2, 3, 4})


def test_weighted_majority_example2_shape(placement):
    # a has weight 2 at p1: p1 alone is a majority of total weight 3.
    assert placement.accessible("a", {1})
    assert not placement.accessible("a", {4})
    assert placement.accessible("a", {4, 1})


def test_even_split_is_not_a_majority():
    placement = CopyPlacement()
    placement.place("y", holders=[1, 2, 3, 4])
    assert not placement.accessible("y", {1, 2})  # 2 of 4: not strict
    assert placement.accessible("y", {1, 2, 3})


def test_accessible_objects_with_local_filter(placement):
    # the local set restricts which objects are considered at all
    accessible = placement.accessible_objects({1, 2, 3}, local={"x", "big"})
    assert accessible == {"x", "big"}
    # without the filter "a" also qualifies (p1's weight-2 copy in view)
    assert placement.accessible("a", {1, 2, 3})


def test_accessible_objects_unfiltered(placement):
    assert placement.accessible_objects({1, 2, 3}) == {"x", "a", "big"}


def test_local_objects(placement):
    assert placement.local_objects(1) == {"x", "a"}
    assert placement.local_objects(3) == {"x", "big"}
    assert placement.local_objects(99) == set()


def test_holders_by_distance(placement):
    distance = {1: 0.0, 2: 0.4, 3: 0.2}.__getitem__
    assert placement.holders_by_distance("x", {1, 2, 3}, distance) == [1, 3, 2]


def test_holders_by_distance_restricted_to_view(placement):
    distance = {1: 0.0, 2: 0.4, 3: 0.2}.__getitem__
    assert placement.holders_by_distance("x", {2, 3}, distance) == [3, 2]


def test_holders_by_distance_tie_breaks_on_pid(placement):
    assert placement.holders_by_distance("x", {1, 2, 3},
                                         lambda _q: 1.0) == [1, 2, 3]


def test_size(placement):
    assert placement.size("big") == 500
    assert placement.size("x") == 1


def test_validation():
    placement = CopyPlacement()
    placement.place("x", holders=[1])
    with pytest.raises(KeyError):
        placement.place("x", holders=[2])
    with pytest.raises(ValueError):
        placement.place("bad", holders={})
    with pytest.raises(ValueError):
        placement.place("bad", holders={1: 0})
    with pytest.raises(ValueError):
        placement.place("bad", holders=[1], size=0)
    with pytest.raises(KeyError):
        placement.copies("ghost")


def test_weights_accessor(placement):
    assert dict(placement.weights("a")) == {1: 2, 4: 1}
    with pytest.raises(KeyError, match="ghost"):
        placement.weights("ghost")


def test_place_rejects_unknown_members():
    placement = CopyPlacement()
    with pytest.raises(ValueError) as excinfo:
        placement.place("x", holders=[1, 7, 9], members=[1, 2, 3])
    message = str(excinfo.value)
    assert "not cluster members" in message
    assert "[7, 9]" in message and "[1, 2, 3]" in message


def test_place_reports_bad_holder_types():
    placement = CopyPlacement()
    with pytest.raises(ValueError, match="processor ids"):
        placement.place("x", holders=["p-one"])


def test_place_many_installs_everything():
    placement = CopyPlacement()
    placement.place_many({"x": [1, 2], "y": {3: 2, 1: 1}}, size=4,
                         members=[1, 2, 3])
    assert placement.objects == {"x", "y"}
    assert placement.weight("y", 3) == 2
    assert placement.size("x") == 4


def test_place_many_is_all_or_nothing():
    placement = CopyPlacement()
    placement.place("x", holders=[1])
    with pytest.raises(ValueError) as excinfo:
        placement.place_many({"x": [2], "y": [1], "z": {1: 0}},
                             members=[1, 2])
    message = str(excinfo.value)
    # every problem is reported, and nothing was installed
    assert "2 of 3 objects" in message
    assert "'x'" in message and "'z'" in message
    assert placement.objects == {"x"}


def test_place_many_truncates_long_problem_lists():
    placement = CopyPlacement()
    assignments = {f"bad{i}": [99] for i in range(8)}
    with pytest.raises(ValueError, match=r"and 3 more"):
        placement.place_many(assignments, members=[1])


def test_place_many_failure_leaves_weights_views_untouched():
    placement = CopyPlacement()
    placement.place("x", holders={1: 2, 2: 1})
    view = placement.weights("x")
    before = dict(view)
    with pytest.raises(ValueError):
        placement.place_many({"y": [1, 2], "x": [3]}, members=[1, 2, 3])
    # the failed batch installed nothing — not even its valid entries —
    # and the live weights() view still reads the old data
    assert placement.objects == {"x"}
    assert dict(view) == before == dict(placement.weights("x"))


def test_place_many_single_problem_names_the_object():
    placement = CopyPlacement()
    with pytest.raises(ValueError, match=r"invalid placement for 'bad'"):
        placement.place_many({"good": [1], "bad": {1: -1}}, members=[1])
    assert placement.objects == set()


# -- online resharding: epochs, staged migrations ----------------------------


def test_epoch_defaults_to_zero(placement):
    assert placement.epoch_of("x") == 0
    assert placement.flips == 0


def test_begin_commit_migration_flips_atomically(placement):
    placement.begin_migration("x", {2: 1, 4: 1}, members=[1, 2, 3, 4])
    # staged holders are visible only through pending_copies
    assert placement.pending_copies("x") == {2, 4}
    assert placement.copies("x") == {1, 2, 3}
    assert placement.epoch_of("x") == 0

    old = placement.commit_migration("x")
    assert dict(old) == {1: 1, 2: 1, 3: 1}
    assert placement.copies("x") == {2, 4}
    assert placement.epoch_of("x") == 1
    assert placement.pending_copies("x") == set()
    assert placement.flips == 1


def test_abort_migration_restores_nothing_because_nothing_changed(placement):
    placement.begin_migration("x", [4], members=[1, 2, 3, 4])
    placement.abort_migration("x")
    assert placement.pending_copies("x") == set()
    assert placement.copies("x") == {1, 2, 3}
    assert placement.epoch_of("x") == 0


def test_migration_staging_errors(placement):
    with pytest.raises(KeyError, match="ghost"):
        placement.begin_migration("ghost", [1])
    placement.begin_migration("x", [4])
    with pytest.raises(KeyError, match="already pending"):
        placement.begin_migration("x", [5])
    with pytest.raises(KeyError, match="no migration pending"):
        placement.commit_migration("a")
    with pytest.raises(ValueError, match="not cluster members"):
        placement.begin_migration("a", [9], members=[1, 2, 3, 4])


def test_replace_unguarded_skips_the_epoch_bump(placement):
    old = placement.replace("x", [4, 5], bump_epoch=False)
    assert dict(old) == {1: 1, 2: 1, 3: 1}
    assert placement.copies("x") == {4, 5}
    assert placement.epoch_of("x") == 0      # the canary's tell
    assert placement.flips == 1
    placement.replace("x", [1, 2])
    assert placement.epoch_of("x") == 1
