"""Integration tests of the virtual partition protocol's lifecycle."""

from repro import Cluster, ProtocolConfig


def make_cluster(n=5, seed=0, **kwargs):
    cluster = Cluster(processors=n, seed=seed, **kwargs)
    cluster.place("x", holders=list(range(1, n + 1)), initial=0)
    return cluster


def converged(cluster):
    ids = {cluster.protocol(p).current_partition for p in cluster.pids}
    views = {cluster.protocol(p).view for p in cluster.pids}
    return len(ids) == 1 and None not in ids and len(views) == 1


def test_bootstrap_starts_converged():
    cluster = make_cluster()
    cluster.start()
    cluster.run(until=1.0)
    assert converged(cluster)


def test_cold_boot_converges_within_liveness_bound():
    """L1 with Δ = π + 8δ: a stable clique converges within the bound."""
    cluster = make_cluster()
    cluster.start(bootstrap=False)
    cluster.run(until=cluster.config.liveness_bound)
    assert converged(cluster)


def test_converged_partition_is_stable_without_failures():
    cluster = make_cluster()
    cluster.start()
    cluster.run(until=500.0)
    assert converged(cluster)
    assert cluster.total_metrics().vp_created == 0


def test_partition_splits_views():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=5.0 + cluster.config.liveness_bound)
    assert cluster.protocol(1).view == frozenset({1, 2, 3})
    assert cluster.protocol(4).view == frozenset({4, 5})
    majority_id = cluster.protocol(1).current_partition
    minority_id = cluster.protocol(4).current_partition
    assert majority_id is not None and minority_id is not None
    assert majority_id != minority_id


def test_heal_merges_partitions():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.injector.heal_all_at(60.0)
    cluster.run(until=60.0 + cluster.config.liveness_bound)
    assert converged(cluster)
    assert cluster.protocol(1).view == frozenset({1, 2, 3, 4, 5})


def test_merged_partition_id_exceeds_both_old_ids():
    """S3: the merged partition must come later in creation order."""
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    before = {cluster.protocol(p).current_partition for p in cluster.pids}
    cluster.injector.heal_all_at(cluster.sim.now + 1.0)
    cluster.run(until=cluster.sim.now + cluster.config.liveness_bound + 5)
    after = cluster.protocol(1).current_partition
    assert all(after > old for old in before if old is not None)


def test_majority_rule_gates_access():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    assert cluster.protocol(1).available("x", write=False)
    assert not cluster.protocol(4).available("x", write=False)


def test_minority_writes_abort_majority_writes_commit():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    good = cluster.write_once(1, "x", 10)
    bad = cluster.write_once(4, "x", 20)
    cluster.run(until=80.0)
    assert good.value == (True, 10)
    assert bad.value[0] is False


def test_r5_recovery_propagates_value_on_merge():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    cluster.write_once(1, "x", 77)
    cluster.run(until=60.0)
    cluster.injector.heal_all_at(61.0)
    cluster.run(until=61.0 + cluster.config.liveness_bound + 10)
    for pid in (4, 5):
        value, date = cluster.processor(pid).store.peek("x")
        assert value == 77, f"p{pid} copy not recovered: {value}"
    read = cluster.read_once(4, "x")
    cluster.run(until=cluster.sim.now + 20)
    assert read.value == (True, 77)


def test_reads_use_nearest_copy():
    from repro.net import DistanceLatency, ring_distances
    latency = DistanceLatency(ring_distances([1, 2, 3, 4, 5]), jitter=0.0)
    cluster = Cluster(processors=5, seed=0, latency=latency)
    cluster.place("x", holders=[2, 4], initial=9)
    cluster.start()
    read = cluster.read_once(1, "x")  # p1's nearest holder is p2
    cluster.run(until=20.0)
    assert read.value == (True, 9)
    reads = [op for op in cluster.history.physical_ops if op.kind == "r"]
    assert [op.copy_pid for op in reads] == [2]


def test_crash_and_recover_rejoins():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.crash_at(5.0, 4)
    cluster.run(until=5.0 + cluster.config.liveness_bound)
    assert 4 not in cluster.protocol(1).view
    cluster.injector.recover_at(50.0, 4)
    cluster.run(until=50.0 + cluster.config.liveness_bound)
    assert converged(cluster)
    assert 4 in cluster.protocol(1).view


def test_recovered_processor_catches_up_on_writes():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.crash_at(5.0, 4)
    cluster.run(until=30.0)
    cluster.write_once(1, "x", 123)
    cluster.run(until=50.0)
    cluster.injector.recover_at(51.0, 4)
    cluster.run(until=51.0 + cluster.config.liveness_bound + 10)
    value, _date = cluster.processor(4).store.peek("x")
    assert value == 123


def test_transactions_during_partition_stay_1sr():
    cluster = make_cluster()
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)

    def body(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value + 1)
        return value

    for _ in range(3):
        cluster.submit(1, body)
        cluster.run(until=cluster.sim.now + 30.0)
    cluster.injector.heal_all_at(cluster.sim.now + 1)
    cluster.run(until=cluster.sim.now + cluster.config.liveness_bound + 10)
    value, _ = cluster.processor(4).store.peek("x")
    assert value == 3
    assert cluster.check_one_copy_serializable()
    assert cluster.check_serializable()


def _count_recovery_reads(init_strategy, split_off_fastpath):
    config = ProtocolConfig(delta=1.0, init_strategy=init_strategy,
                            split_off_fastpath=split_off_fastpath)
    cluster = make_cluster(config=config)
    cluster.start()
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=40.0)
    cluster.write_once(1, "x", 55)
    cluster.run(until=60.0)
    counts = {"vpread": 0}

    def tap(message):
        if message.kind == "vpread":
            counts["vpread"] += 1

    cluster.network.tap = tap
    cluster.injector.heal_all_at(61.0)
    cluster.run(until=61.0 + cluster.config.liveness_bound + 10)
    value, _ = cluster.processor(5).store.peek("x")
    assert value == 55, "recovery must propagate the majority write"
    return counts["vpread"]


def test_previous_strategy_cuts_recovery_reads():
    """§6: the previous_v-ordered search reads one copy per object
    instead of every copy in the view."""
    naive_reads = _count_recovery_reads("read-all", False)
    optimized_reads = _count_recovery_reads("previous", True)
    assert optimized_reads < naive_reads / 2, (
        f"expected a large reduction: {optimized_reads} vs {naive_reads}"
    )


def test_identical_seeds_identical_histories():
    from repro.net import UniformLatency

    def run(seed):
        cluster = Cluster(processors=5, seed=seed,
                          latency=UniformLatency(0.5, 1.0))
        cluster.place("x", holders=[1, 2, 3, 4, 5], initial=0)
        cluster.start()
        cluster.injector.partition_at(5.0, [{1, 2}, {3, 4, 5}])
        cluster.write_once(3, "x", 1)
        cluster.injector.heal_all_at(50.0)
        cluster.run(until=120.0)
        history = cluster.history
        return (
            [(t, p, v) for t, p, v, _ in history.joins],
            [(op.time, op.txn, op.kind, op.obj, op.copy_pid)
             for op in history.physical_ops],
        )

    assert run(9) == run(9)
    assert run(9) != run(10)
