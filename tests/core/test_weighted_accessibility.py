"""Property tests for rule R1's weighted-majority edge cases.

The sharding policies lean on three algebraic facts about
``accessible``: tied weights can never both claim a majority, a
single heavy copy can be the *only* majority (the generalized
Example 2 shape), and a degree-1 object is accessible exactly where
its one copy lives.  These pin the R1 arithmetic the policies assume.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.views import CopyPlacement
from repro.shard.policy import WeightedHomePolicy

pids = st.integers(min_value=1, max_value=40)
weights = st.integers(min_value=1, max_value=9)
degrees = st.integers(min_value=1, max_value=8)


@given(st.tuples(pids, pids).filter(lambda t: t[0] != t[1]), weights)
def test_tied_weights_are_never_accessible_apart(holders, weight):
    """Two copies of equal weight: neither side alone is a strict
    majority, so a clean split leaves the object fully unavailable —
    the reason Example 2 weights one copy *up*."""
    a, b = holders
    placement = CopyPlacement()
    placement.place("x", holders={a: weight, b: weight})
    assert not placement.accessible("x", {a})
    assert not placement.accessible("x", {b})
    assert placement.accessible("x", {a, b})


@given(degrees, st.integers(min_value=0, max_value=200))
def test_single_heavy_copy_is_the_only_majority(degree, index):
    """The weighted-home shape (home weight k, k-1 light copies):
    every view with the home is a majority, no view without it is."""
    ring = list(range(1, 2 * degree + 1))
    assignment = WeightedHomePolicy(degree=degree)._one(index, "x", ring)
    placement = CopyPlacement()
    placement.place("x", holders=assignment)
    home = next(iter(assignment))
    light = set(assignment) - {home}
    assert placement.accessible("x", {home})
    assert not placement.accessible("x", light | {99})
    assert placement.accessible("x", light | {home})


@given(pids, st.sets(pids, max_size=6))
def test_degree_one_object_accessible_exactly_at_its_holder(holder, view):
    placement = CopyPlacement()
    placement.place("x", holders=[holder])
    assert placement.accessible("x", view) == (holder in view)


@given(st.dictionaries(pids, weights, min_size=1, max_size=8),
       st.sets(pids, max_size=8))
def test_complement_views_never_both_accessible(holders, view):
    """R1's safety core: a view and its complement cannot both hold a
    strict weighted majority of the same object."""
    placement = CopyPlacement()
    placement.place("x", holders=holders)
    complement = set(holders) - view
    assert not (placement.accessible("x", view)
                and placement.accessible("x", complement))
