"""Unit tests for virtual partition identifiers."""

import pytest

from repro.core.ids import VpId, initial_vp_id


def test_total_order_by_sequence_then_pid():
    assert VpId(1, 5) < VpId(2, 1)
    assert VpId(2, 1) < VpId(2, 5)
    assert not VpId(2, 5) < VpId(2, 5)


def test_equality_and_hash():
    assert VpId(3, 2) == VpId(3, 2)
    assert hash(VpId(3, 2)) == hash(VpId(3, 2))
    assert VpId(3, 2) != VpId(3, 1)


def test_successor_is_strictly_greater_for_any_pid():
    vpid = VpId(4, 9)
    for pid in (1, 9, 100):
        assert vpid < vpid.successor(pid)


def test_successor_bumps_sequence_and_stamps_pid():
    assert VpId(4, 9).successor(2) == VpId(5, 2)


def test_initial_id():
    assert initial_vp_id(7) == VpId(0, 7)


def test_negative_sequence_rejected():
    with pytest.raises(ValueError):
        VpId(-1, 1)


def test_ordering_against_other_types_raises():
    with pytest.raises(TypeError):
        _ = VpId(1, 1) < 42


def test_sorted_is_creation_order():
    ids = [VpId(2, 1), VpId(1, 9), VpId(2, 3), VpId(0, 2)]
    assert sorted(ids) == [VpId(0, 2), VpId(1, 9), VpId(2, 1), VpId(2, 3)]


def test_repr_is_compact():
    assert repr(VpId(3, 4)) == "vp(3,4)"


def test_frozen():
    vpid = VpId(1, 1)
    with pytest.raises(AttributeError):
        vpid.n = 5  # type: ignore[misc]
