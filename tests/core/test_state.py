"""Unit tests for the Fig. 3 shared state."""

import pytest

from repro.analysis.history import History
from repro.core.ids import VpId
from repro.core.state import ReplicaState
from repro.sim import Simulator


@pytest.fixture()
def state():
    return ReplicaState(pid=3, sim=Simulator())


def test_boot_state(state):
    assert state.assigned
    assert state.cur_id == VpId(0, 3)
    assert state.max_id == VpId(0, 3)
    assert state.lview == {3}
    assert state.locked == set()


def test_depart_clears_assignment_only(state):
    state.depart()
    assert not state.assigned
    assert state.cur_id == VpId(0, 3)  # "last assigned" is remembered
    assert state.lview == {3}


def test_depart_is_idempotent(state):
    state.depart()
    epoch = state.epoch
    state.depart()
    assert state.epoch == epoch


def test_join_updates_everything(state):
    state.join(VpId(4, 1), {1, 2, 3}, {1: (VpId(3, 1), frozenset({"x"}))})
    assert state.assigned
    assert state.cur_id == VpId(4, 1)
    assert state.lview == {1, 2, 3}
    assert state.previous_map[1][0] == VpId(3, 1)
    assert state.view_history[VpId(4, 1)] == frozenset({1, 2, 3})


def test_join_while_assigned_departs_first(state):
    history = History()
    state = ReplicaState(pid=3, sim=Simulator(), history=history)
    state.join(VpId(1, 1), {1, 3})
    state.join(VpId(2, 1), {1, 2, 3})
    departed = [(pid, vpid) for _, pid, vpid in history.departs]
    assert (3, VpId(0, 3)) in departed
    assert (3, VpId(1, 1)) in departed


def test_max_id_monotonic(state):
    state.max_id = VpId(5, 1)
    with pytest.raises(ValueError):
        state.max_id = VpId(4, 9)


def test_max_id_survives_crash(state):
    state.max_id = VpId(7, 3)
    state.reset_volatile()
    assert state.max_id == VpId(7, 3)


def test_reset_volatile_clears_view_and_locks(state):
    state.join(VpId(2, 1), {1, 2, 3})
    state.lock_objects({"x", "y"})
    state.reset_volatile()
    assert not state.assigned
    assert state.lview == {3}
    assert state.locked == set()
    assert state.previous_map == {}


def test_reboot_mints_fresh_higher_id(state):
    state.max_id = VpId(9, 1)
    state.reset_volatile()
    state.reboot()
    assert state.assigned
    assert state.cur_id == VpId(10, 3)
    assert state.cur_id > VpId(9, 1)
    assert state.lview == {3}


def test_locked_set_notifications(state):
    sim = state.sim
    observed = []

    def waiter():
        yield from state.locked_changed.wait_for(
            lambda: "x" not in state.locked)
        observed.append(sim.now)

    state.lock_objects({"x"})
    sim.process(waiter())
    sim.timeout(5.0).add_callback(lambda e: state.unlock_object("x"))
    sim.run()
    assert observed == [5.0]


def test_partition_change_notifier(state):
    sim = state.sim
    fired = []

    def waiter():
        yield state.partition_changed.wait()
        fired.append(sim.now)

    sim.process(waiter())
    sim.timeout(2.0).add_callback(
        lambda e: state.join(VpId(1, 1), {1, 3}))
    sim.run()
    assert fired == [2.0]


def test_join_and_depart_recorded_in_history():
    history = History()
    state = ReplicaState(pid=3, sim=Simulator(), history=history)
    state.join(VpId(1, 1), {1, 3})
    state.depart()
    assert (0.0, 3, VpId(1, 1), frozenset({1, 3})) in history.joins
    assert any(vpid == VpId(1, 1) for _, _, vpid in history.departs)
