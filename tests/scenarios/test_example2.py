"""Example 2 (Fig. 2, Tables 1–2): the stale-view reads-from cycle.

Four processors with weighted copies re-partition from {A,B}|{C,D} to
{B,C}|{A,D}; only B and D notice.  Under the naive protocol each
processor's Table-2 transaction runs entirely on local copies and all
four commit, forming the cycle T_A→T_B→T_C→T_D→T_A — serializable, not
1SR.  Property S3 prevents the cycle under the virtual partitions
protocol.
"""

import pytest

from repro.workload.scenarios import (
    EXAMPLE2_PLACEMENT,
    EXAMPLE2_TXNS,
    run_example2_naive,
    run_example2_vp,
)


@pytest.fixture(scope="module")
def naive_outcome():
    return run_example2_naive(seed=0)


@pytest.fixture(scope="module")
def vp_outcome():
    return run_example2_vp(seed=0)


def test_placement_matches_table2():
    # a², b on A; b², c on B; c², d on C; d², a on D.
    assert EXAMPLE2_PLACEMENT["a"] == {1: 2, 4: 1}
    assert EXAMPLE2_PLACEMENT["b"] == {2: 2, 1: 1}
    assert EXAMPLE2_PLACEMENT["c"] == {3: 2, 2: 1}
    assert EXAMPLE2_PLACEMENT["d"] == {4: 2, 3: 1}
    assert EXAMPLE2_TXNS == {1: ("b", "a"), 2: ("c", "b"),
                             3: ("d", "c"), 4: ("a", "d")}


def test_naive_commits_all_four(naive_outcome):
    assert len(naive_outcome.committed) == 4


def test_naive_each_txn_touched_only_local_copies(naive_outcome):
    history = naive_outcome.cluster.history
    for record in history.committed():
        touched = {op.copy_pid for op in record.physical_ops}
        assert touched == {record.origin}, (
            f"txn {record.txn} was supposed to stay local, touched {touched}"
        )


def test_naive_serializable_but_not_one_copy(naive_outcome):
    assert naive_outcome.cp_serializable
    assert naive_outcome.one_copy.ok is False


def test_naive_all_reads_returned_initial_values(naive_outcome):
    """The cycle exists because every read saw the pre-partition value."""
    history = naive_outcome.cluster.history
    for record in history.committed():
        reads = [op for op in record.logical_ops if op.kind == "r"]
        assert all(op.version == ("T0", 0) for op in reads)


def test_vp_never_produces_the_cycle(vp_outcome):
    assert vp_outcome.one_copy.ok is True
    assert vp_outcome.cp_serializable


def test_vp_aborts_rather_than_violate(vp_outcome):
    # In the final partitions at least one Table-2 transaction is
    # genuinely unavailable (its read-set majority is elsewhere), so
    # not all four can commit; whatever commits is 1SR.
    assert len(vp_outcome.committed) < 4
    assert vp_outcome.aborted


def test_vp_s3_depart_before_join(vp_outcome):
    """Audit S3 on the recorded execution: if p ∈ members(v) ∩ view(w)
    with v ≺ w, then depart(p, v) happens before any join(·, w)."""
    history = vp_outcome.cluster.history
    departs = {}
    for time, pid, vpid in history.departs:
        departs.setdefault((pid, vpid), time)
    joins_by_vp = {}
    for time, pid, vpid, view in history.joins:
        joins_by_vp.setdefault(vpid, []).append((time, pid, view))
    for vpid, joins in joins_by_vp.items():
        first_join = min(time for time, _, _ in joins)
        view = joins[0][2]
        for earlier_vp in joins_by_vp:
            if not (earlier_vp < vpid):
                continue
            for pid in history.members_of(earlier_vp) & set(view):
                depart_time = departs.get((pid, earlier_vp))
                assert depart_time is not None, (
                    f"{pid} never departed {earlier_vp} but {vpid} "
                    f"includes it in its view"
                )
                assert depart_time <= first_join, (
                    f"S3 violated: depart({pid},{earlier_vp}) at "
                    f"{depart_time} after first join of {vpid} at {first_join}"
                )
