"""Example 1 (Fig. 1): the lost increment on a non-transitive graph.

The paper's first counterexample: with the A–B link cut but both still
talking to C, the naive view-based majority protocol lets two
increments of x both read 0 and both commit — serializable, not 1SR.
The virtual partitions protocol under identical connectivity loses
neither increment.
"""

import pytest

from repro.workload.scenarios import run_example1_naive, run_example1_vp


@pytest.fixture(scope="module")
def naive_outcome():
    return run_example1_naive(seed=0)


@pytest.fixture(scope="module")
def vp_outcome():
    return run_example1_vp(seed=0)


def test_naive_commits_both_increments(naive_outcome):
    assert len(naive_outcome.committed) == 2
    assert naive_outcome.aborted == []


def test_naive_loses_an_update(naive_outcome):
    # Two increments of an initially-0 counter, yet every copy holds 1.
    assert naive_outcome.lost_update
    assert all(v == 1 for v in naive_outcome.final_values.values())


def test_naive_is_serializable_but_not_one_copy(naive_outcome):
    """The exact phenomenon of Example 1: CP-serializable, non-1SR."""
    assert naive_outcome.cp_serializable
    assert naive_outcome.one_copy.ok is False
    assert naive_outcome.one_copy.violation is not None


def test_vp_commits_both_increments_eventually(vp_outcome):
    assert len(vp_outcome.committed) == 2


def test_vp_preserves_both_updates(vp_outcome):
    assert not vp_outcome.lost_update
    values = set(vp_outcome.final_values.values())
    assert 2 in values, f"counter must reach 2 somewhere: {vp_outcome.final_values}"


def test_vp_is_one_copy_serializable(vp_outcome):
    assert vp_outcome.one_copy.ok is True
    assert vp_outcome.cp_serializable


def test_vp_witness_orders_first_increment_first(vp_outcome):
    witness = vp_outcome.one_copy.witness
    assert witness is not None and len(witness) == 2


def test_scenarios_are_deterministic():
    again = run_example1_naive(seed=0)
    assert again.committed == run_example1_naive(seed=0).committed
    assert again.lost_update
