"""The coordinator decision log must not grow with history.

Before this fix every decided transaction left a permanent entry in the
coordinator's in-memory ``decisions`` map.  Entries are now retired as
soon as the decide fan-out has left (the forced WAL record remains the
durable authority for late ``txn-status`` queries), so the map holds
only in-flight transactions no matter how long the run.
"""

from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment


def test_decision_map_stays_bounded_over_long_run():
    result = run_experiment(ExperimentSpec(
        processors=4, objects=6, seed=5, duration=600.0, grace=80.0,
        workload=WorkloadSpec(read_fraction=0.4, mean_interarrival=5.0),
        clients=2, retries=2,
    ))
    decided = result.committed + result.aborted
    assert decided > 100, "run too small to show growth"
    cluster = result.cluster
    for pid in cluster.pids:
        live = len(cluster.protocol(pid).commit.decisions)
        assert live <= 2, (
            f"p{pid} still holds {live} decision entries after the "
            "grace period: retirement is not happening"
        )
    totals = cluster.total_metrics()
    # every commit retires its entry (aborts without a prepare round
    # never open one), so the counter scales with the decided load
    assert totals.decisions_retired >= result.committed
