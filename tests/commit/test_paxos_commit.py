"""Paxos Commit (Gray & Lamport): non-blocking atomic commit.

The headline property 2PC cannot offer: with the coordinator crashed
between the prepare round and the decide fan-out — and *never*
recovering — the prepared participants still reach the transaction's
outcome, because every vote lives in a Paxos instance replicated to
2F+1 acceptors and any recovery leader reaching a majority of them can
finish the protocol.
"""

import pytest

from repro import Cluster, ProtocolConfig
from repro.commit import COMMIT_BACKENDS, make_commit
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import ExperimentSpec, run_experiment


def test_backend_registry_and_factory_validation():
    assert set(COMMIT_BACKENDS) == {"2pc", "paxos"}
    with pytest.raises(ValueError, match="three-phase"):
        make_commit("three-phase", host=None)


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="commit backend"):
        ProtocolConfig(commit_backend="bogus")


def test_paxos_happy_path_commits_and_stays_1sr():
    """Failure-free runs: same outcomes and correctness as 2PC, paid
    for with the extra acceptor round."""
    result = run_experiment(ExperimentSpec(
        processors=4, objects=3, seed=11, duration=200.0,
        workload=WorkloadSpec(read_fraction=0.5, mean_interarrival=12.0),
        commit_backend="paxos", retries=2, check=True, audit=True,
    ))
    assert result.committed > 0
    assert result.one_copy_ok is True
    assert result.audit_violations == ()


def test_prepared_participants_decide_without_coordinator():
    """Coordinator crashes after the prepare round, before any decide
    leaves, and never comes back.  Under 2PC the participants would
    block forever; under Paxos Commit the surviving majority of
    acceptors lets recovery leaders finish the transaction."""
    config = ProtocolConfig(delta=4.0, storage_sync_cost=3.0,
                            commit_backend="paxos")
    cluster = Cluster(processors=3, seed=3, config=config, audit=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)
    outcome = cluster.write_once(1, "x", 7)
    txn = (1, 1)
    # park once every prepared vote is replicated: each participant's
    # ballot-0 accept has landed at acceptors 2 and 3 (a majority of
    # the three), but the coordinator — whose px-accepted confirmations
    # take one more delta — has not decided yet
    def votes_replicated():
        for acceptor in (2, 3):
            store = cluster.processor(acceptor).store
            for rm in (1, 2, 3):
                value = store.durable_cell(f"px:{txn}:{rm}").value
                if value is None or value[1] is None:
                    return False
        return True

    while not votes_replicated():
        cluster.sim.run(until=cluster.sim.now + 0.25)
        assert cluster.sim.now < 120.0, "votes never replicated"
    assert cluster.processor(1).store.decision_of(txn) is None
    assert txn in cluster.protocol(2).commit.in_doubt
    cluster.injector.crash_at(cluster.sim.now + 0.1, 1)
    cluster.run(until=cluster.sim.now + 400.0)  # p1 stays down

    for pid in (2, 3):
        commit = cluster.protocol(pid).commit
        assert txn not in commit.in_doubt, "participant left blocked"
        assert commit.metrics.in_doubt_dwell, "dwell not recorded"
        assert cluster.processor(pid).store.peek("x")[0] == 7
    assert cluster.history.txns[txn].status == "committed"
    # the dead coordinator's client saw the outcome ceded, not a commit
    committed, _reason = outcome.value
    assert committed is False
    assert cluster.auditor.ok, [str(v) for v in cluster.auditor.violations]
    assert cluster.check_one_copy_serializable() is True


def test_paxos_dwell_is_bounded_not_open_ended():
    """The blocking window above closes within a few timeout rounds —
    it does not scale with how long the coordinator stays dead."""
    config = ProtocolConfig(delta=4.0, storage_sync_cost=3.0,
                            commit_backend="paxos")
    cluster = Cluster(processors=3, seed=3, config=config)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)
    cluster.write_once(1, "x", 7)
    txn = (1, 1)
    while txn not in cluster.protocol(2).commit.in_doubt:
        cluster.sim.run(until=cluster.sim.now + 0.25)
        assert cluster.sim.now < 120.0
    cluster.injector.crash_at(cluster.sim.now + 0.1, 1)
    cluster.run(until=cluster.sim.now + 2000.0)
    for pid in (2, 3):
        for dwell in cluster.protocol(pid).commit.metrics.in_doubt_dwell:
            assert dwell <= 6 * cluster.config.access_timeout, (
                f"p{pid} dwelled {dwell}: resolution waited on recovery"
            )
