"""Unit tests for the runtime invariant auditor.

Each test feeds the auditor a synthetic event stream that violates (or
honours) exactly one invariant and checks the verdict — the auditor is
pure observation, so no simulator is needed.
"""

from repro.audit import InvariantAuditor
from repro.core.ids import VpId
from repro.core.views import CopyPlacement


V1 = VpId(1, 1)
V2 = VpId(2, 2)


def placement_xyz():
    placement = CopyPlacement()
    placement.place("x", [1, 2, 3])
    return placement


class FakeState:
    def __init__(self, assigned=True, cur_id=V1, lview=(1, 2, 3),
                 locked=()):
        self.assigned = assigned
        self.cur_id = cur_id
        self.lview = set(lview)
        self.locked = set(locked)


# -- S1/S2/S3 ----------------------------------------------------------------


def test_clean_join_sequence_is_ok():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=1.0, pid=2, vpid=V1, view=frozenset({1, 2}))
    auditor.on_depart(time=5.0, pid=1, vpid=V1)
    auditor.on_depart(time=5.0, pid=2, vpid=V1)
    auditor.on_join(time=6.0, pid=1, vpid=V2, view=frozenset({1, 2}))
    auditor.on_join(time=6.0, pid=2, vpid=V2, view=frozenset({1, 2}))
    auditor.finalize()
    assert auditor.ok
    assert auditor.report() == "auditor: all invariants held"


def test_s1_two_views_for_one_vpid():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=1.0, pid=2, vpid=V1, view=frozenset({1, 2, 3}))
    assert [v.invariant for v in auditor.violations] == ["S1"]


def test_s2_view_must_contain_joiner():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=3, vpid=V1, view=frozenset({1, 2}))
    assert [v.invariant for v in auditor.violations] == ["S2"]


def test_s3_depart_after_newer_join():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=5.0, pid=1, vpid=V2, view=frozenset({1, 2}))
    auditor.on_depart(time=7.0, pid=1, vpid=V1)  # too late: V2 began at 5
    auditor.finalize()
    assert [v.invariant for v in auditor.violations] == ["S3"]


def test_s3_missing_depart_flagged_at_finalize():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=5.0, pid=1, vpid=V2, view=frozenset({1, 2}))
    assert auditor.ok, "obligation is pending, not yet a violation"
    auditor.finalize()
    assert [v.invariant for v in auditor.violations] == ["S3"]


def test_s3_same_instant_depart_and_join_is_legal():
    """Fig. 5/6 commit the new view and depart the old one in the same
    handler — the same-instant race must not be flagged."""
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=5.0, pid=1, vpid=V2, view=frozenset({1, 2}))
    auditor.on_depart(time=5.0, pid=1, vpid=V1)
    auditor.finalize()
    assert auditor.ok


def test_s3_checked_against_late_joiner_of_old_partition():
    """The member of an old view that joins only after a newer view
    already includes it is caught by the reverse direction."""
    auditor = InvariantAuditor()
    auditor.on_join(time=5.0, pid=1, vpid=V2, view=frozenset({1, 2}))
    auditor.on_join(time=6.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.finalize()
    assert "S3" in [v.invariant for v in auditor.violations]


# -- R1 / R3 (logical accesses) ----------------------------------------------


def test_r1_access_in_minority_view():
    auditor = InvariantAuditor(placement_xyz())
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1}))
    auditor.violations.clear()  # the S2-clean join; isolate the R1 check
    auditor.on_logical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                              obj="x", vpid=V1, targets=(1,))
    assert [v.invariant for v in auditor.violations] == ["R1"]


def test_r3_write_must_hit_all_in_view_copies():
    auditor = InvariantAuditor(placement_xyz())
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2, 3}))
    auditor.on_logical_access(time=2.0, pid=1, txn=(1, 1), kind="w",
                              obj="x", vpid=V1, targets=(1, 2))  # missing 3
    assert [v.invariant for v in auditor.violations] == ["R3"]


def test_clean_read_and_write_pass():
    auditor = InvariantAuditor(placement_xyz())
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2, 3}))
    auditor.on_logical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                              obj="x", vpid=V1, targets=(2,))
    auditor.on_logical_access(time=3.0, pid=1, txn=(1, 1), kind="w",
                              obj="x", vpid=V1, targets=(1, 2, 3))
    assert auditor.ok


def test_unknown_vpid_is_skipped_not_flagged():
    auditor = InvariantAuditor(placement_xyz())
    auditor.on_logical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                              obj="x", vpid=V1, targets=(1,))
    assert auditor.ok


# -- R5 / view match / placement (physical accesses) -------------------------


def test_r5_serving_a_locked_copy():
    auditor = InvariantAuditor(placement_xyz())
    state = FakeState(locked={"x"})
    auditor.on_physical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                               obj="x", vpid=V1, state=state)
    assert [v.invariant for v in auditor.violations] == ["R5"]


def test_view_match_serving_foreign_partition():
    auditor = InvariantAuditor(placement_xyz())
    state = FakeState(cur_id=V2)
    auditor.on_physical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                               obj="x", vpid=V1, state=state)
    assert [v.invariant for v in auditor.violations] == ["view-match"]


def test_placement_serving_unheld_object():
    auditor = InvariantAuditor(placement_xyz())
    state = FakeState(lview={1, 2, 3, 4})
    auditor.on_physical_access(time=2.0, pid=4, txn=(1, 1), kind="r",
                               obj="x", vpid=V1, state=state)
    assert [v.invariant for v in auditor.violations] == ["placement"]


def test_clean_physical_access_passes():
    auditor = InvariantAuditor(placement_xyz())
    auditor.on_physical_access(time=2.0, pid=1, txn=(1, 1), kind="r",
                               obj="x", vpid=V1, state=FakeState())
    assert auditor.ok


# -- commit safety --------------------------------------------------------------


def test_2pc_decision_flip_flagged():
    auditor = InvariantAuditor()
    auditor.on_decision(1.0, 1, (1, 1), "undecided")
    auditor.on_decision(2.0, 1, (1, 1), "abort")
    auditor.on_decision(3.0, 1, (1, 1), "commit")
    # the flip itself plus the conflict with the first decided outcome
    assert {v.invariant for v in auditor.violations} == {"commit-decision"}
    assert "flipped" in auditor.violations[0].detail


def test_2pc_undecided_then_commit_is_clean():
    auditor = InvariantAuditor()
    auditor.on_decision(1.0, 1, (1, 1), "undecided")
    auditor.on_decision(2.0, 1, (1, 1), "commit")
    auditor.on_decision_applied(3.0, 2, (1, 1), "commit")
    assert auditor.ok


def test_2pc_divergent_applied_outcomes():
    auditor = InvariantAuditor()
    auditor.on_decision_applied(1.0, 2, (1, 1), "abort")
    auditor.on_decision_applied(2.0, 3, (1, 1), "commit")
    assert [v.invariant for v in auditor.violations] == ["commit-apply"]


def test_2pc_commit_decided_after_applied_abort():
    """The coordinator-side R4 race the hunter caught: a processor
    already rolled the transaction back, then commit was decided."""
    auditor = InvariantAuditor()
    auditor.on_decision(1.0, 1, (1, 1), "undecided")
    auditor.on_decision_applied(2.0, 1, (1, 1), "abort")
    auditor.on_decision(3.0, 1, (1, 1), "commit")
    assert "commit-decision" in [v.invariant for v in auditor.violations]


def test_2pc_apply_contradicting_coordinator_log():
    auditor = InvariantAuditor()
    auditor.on_decision(1.0, 1, (1, 1), "commit")
    auditor.on_decision_applied(2.0, 2, (1, 1), "abort")
    assert [v.invariant for v in auditor.violations] == ["commit-apply"]


# -- plumbing ----------------------------------------------------------------


def test_violation_carries_context_and_serializes():
    auditor = InvariantAuditor()
    auditor.on_join(time=1.0, pid=1, vpid=V1, view=frozenset({1, 2}))
    auditor.on_join(time=1.5, pid=3, vpid=V1, view=frozenset({1, 2}))
    violation = auditor.violations[0]
    assert violation.context, "violations must carry recent trace context"
    data = violation.to_dict()
    assert data["invariant"] == "S2"
    assert data["context"][-1]["event"] == "join"
    assert "S2" in str(violation)


def test_audited_cluster_run_stays_clean():
    """End-to-end: a partitioned-and-healed VP run audits clean."""
    from repro import Cluster

    cluster = Cluster(processors=3, seed=7, audit=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.injector.partition_at(30.0, [{1, 2}, {3}])
    cluster.injector.heal_all_at(80.0)
    outcomes = [cluster.write_once(1, "x", 1)]
    cluster.run(until=200.0)
    cluster.auditor.finalize()
    assert cluster.auditor.ok, cluster.auditor.report()
    assert outcomes[0].value[0]
