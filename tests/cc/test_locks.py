"""Unit tests for the copy lock manager."""

import pytest

from repro.cc.locks import EXCLUSIVE, SHARED, LockManager
from repro.sim import Simulator


@pytest.fixture()
def manager():
    return LockManager(Simulator())


def test_shared_locks_are_compatible(manager):
    a = manager.acquire("t1", "x", SHARED)
    b = manager.acquire("t2", "x", SHARED)
    assert a.triggered and b.triggered
    assert manager.holders("x") == {"t1": SHARED, "t2": SHARED}


def test_exclusive_blocks_everyone(manager):
    a = manager.acquire("t1", "x", EXCLUSIVE)
    b = manager.acquire("t2", "x", SHARED)
    c = manager.acquire("t3", "x", EXCLUSIVE)
    assert a.triggered
    assert not b.triggered and not c.triggered


def test_release_promotes_fifo(manager):
    manager.acquire("t1", "x", EXCLUSIVE)
    b = manager.acquire("t2", "x", SHARED)
    c = manager.acquire("t3", "x", SHARED)
    d = manager.acquire("t4", "x", EXCLUSIVE)
    manager.release_all("t1")
    # Both shared requests are granted together; the exclusive waits.
    assert b.triggered and c.triggered
    assert not d.triggered
    manager.release_all("t2")
    assert not d.triggered
    manager.release_all("t3")
    assert d.triggered


def test_no_barging_behind_queued_exclusive(manager):
    manager.acquire("t1", "x", SHARED)
    b = manager.acquire("t2", "x", EXCLUSIVE)
    c = manager.acquire("t3", "x", SHARED)  # arrives after queued X
    assert not b.triggered
    assert not c.triggered, "shared must not barge past a queued exclusive"
    manager.release_all("t1")
    assert b.triggered and not c.triggered


def test_reentrant_same_mode(manager):
    manager.acquire("t1", "x", SHARED)
    again = manager.acquire("t1", "x", SHARED)
    assert again.triggered


def test_x_covers_s(manager):
    manager.acquire("t1", "x", EXCLUSIVE)
    read = manager.acquire("t1", "x", SHARED)
    assert read.triggered
    assert manager.holders("x") == {"t1": EXCLUSIVE}


def test_upgrade_granted_when_sole_holder(manager):
    manager.acquire("t1", "x", SHARED)
    up = manager.acquire("t1", "x", EXCLUSIVE)
    assert up.triggered
    assert manager.holders("x") == {"t1": EXCLUSIVE}


def test_upgrade_waits_for_other_readers(manager):
    manager.acquire("t1", "x", SHARED)
    manager.acquire("t2", "x", SHARED)
    up = manager.acquire("t1", "x", EXCLUSIVE)
    assert not up.triggered
    manager.release_all("t2")
    assert up.triggered


def test_cancel_leaves_queue_and_promotes(manager):
    manager.acquire("t1", "x", EXCLUSIVE)
    b = manager.acquire("t2", "x", EXCLUSIVE)
    c = manager.acquire("t3", "x", SHARED)
    b.cancel()
    manager.release_all("t1")
    assert not b.triggered
    assert c.triggered


def test_release_all_returns_freed_objects(manager):
    manager.acquire("t1", "x", SHARED)
    manager.acquire("t1", "y", EXCLUSIVE)
    freed = manager.release_all("t1")
    assert sorted(freed) == ["x", "y"]
    assert manager.holders("x") == {}


def test_is_write_locked(manager):
    manager.acquire("t1", "x", SHARED)
    assert not manager.is_write_locked("x")
    manager.acquire("t2", "y", EXCLUSIVE)
    assert manager.is_write_locked("y")


def test_holding_txns(manager):
    manager.acquire("t1", "x", SHARED)
    manager.acquire("t2", "y", EXCLUSIVE)
    assert manager.holding_txns() == {"t1", "t2"}


def test_unknown_mode_rejected(manager):
    with pytest.raises(ValueError):
        manager.acquire("t1", "x", "Z")


def test_queue_length(manager):
    manager.acquire("t1", "x", EXCLUSIVE)
    manager.acquire("t2", "x", SHARED)
    manager.acquire("t3", "x", SHARED)
    assert manager.queue_length("x") == 2
    assert manager.queue_length("never-locked") == 0


def test_locks_on_different_objects_independent(manager):
    a = manager.acquire("t1", "x", EXCLUSIVE)
    b = manager.acquire("t2", "y", EXCLUSIVE)
    assert a.triggered and b.triggered
