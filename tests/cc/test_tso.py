"""Unit tests for strict timestamp ordering."""

import pytest

from repro.cc.strategy import REJECTED_TIMEOUT, REJECTED_TOO_LATE
from repro.cc.tso import TimestampOrdering
from repro.sim import Simulator


@pytest.fixture()
def setup():
    sim = Simulator()
    tso = TimestampOrdering(sim, wait_timeout=10.0)
    return sim, tso


def run_gen(sim, generator):
    """Drive a strategy generator to completion and return its value."""
    process = sim.process(generator)
    sim.run()
    return process.value


def ts(time, pid=1, seq=1):
    return (time, pid, seq)


def test_reads_in_timestamp_order_granted(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_read("t1", ts(1.0), "x")) == (True, None)
    assert run_gen(sim, tso.begin_read("t2", ts(2.0), "x")) == (True, None)


def test_read_below_wts_rejected(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("t2", ts(5.0), "x"))[0]
    tso.finish("t2", "commit")
    granted, reason = run_gen(sim, tso.begin_read("t1", ts(1.0), "x"))
    assert not granted and reason == REJECTED_TOO_LATE


def test_write_below_rts_rejected(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_read("t2", ts(5.0), "x"))[0]
    granted, reason = run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))
    assert not granted and reason == REJECTED_TOO_LATE


def test_write_below_wts_rejected(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("t2", ts(5.0), "x"))[0]
    tso.finish("t2", "commit")
    granted, reason = run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))
    assert not granted and reason == REJECTED_TOO_LATE


def test_no_dirty_reads_waits_for_writer_decision(setup):
    sim, tso = setup
    outcomes = []

    def writer():
        granted = yield from tso.begin_write("w", ts(1.0, pid=1), "x")
        outcomes.append(("write", granted[0], sim.now))
        yield sim.timeout(4.0)
        tso.finish("w", "commit")

    def reader():
        yield sim.timeout(1.0)
        granted = yield from tso.begin_read("r", ts(2.0, pid=2), "x")
        outcomes.append(("read", granted[0], sim.now))

    sim.process(writer())
    sim.process(reader())
    sim.run()
    assert ("write", True, 0.0) in outcomes
    # the read waited for the commit at t=4, then was granted
    assert ("read", True, 4.0) in outcomes


def test_wait_times_out_if_decision_never_comes(setup):
    sim, tso = setup

    def writer():
        yield from tso.begin_write("w", ts(1.0), "x")

    def reader():
        yield sim.timeout(1.0)
        result = yield from tso.begin_read("r", ts(2.0, pid=2), "x")
        return result

    sim.process(writer())
    read_proc = sim.process(reader())
    sim.run()
    granted, reason = read_proc.value
    assert not granted and reason == REJECTED_TIMEOUT


def test_rewrite_own_uncommitted_value_allowed(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))[0]
    assert run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))[0]


def test_read_own_uncommitted_write_allowed(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))[0]
    assert run_gen(sim, tso.begin_read("t1", ts(1.0), "x"))[0]


def test_abort_releases_uncommitted_mark(setup):
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("t1", ts(1.0), "x"))[0]
    tso.finish("t1", "abort")
    # a later reader needs no wait now
    assert run_gen(sim, tso.begin_read("t2", ts(2.0), "x")) == (True, None)


def test_active_txns_tracked(setup):
    sim, tso = setup
    run_gen(sim, tso.begin_read("t1", ts(1.0), "x"))
    run_gen(sim, tso.begin_write("t2", ts(2.0), "y"))
    assert tso.active_txns() == {"t1", "t2"}
    tso.finish("t1", "commit")
    assert tso.active_txns() == {"t2"}


def test_stable_read_gate_waits_for_writer(setup):
    sim, tso = setup
    times = []

    def writer():
        yield from tso.begin_write("w", ts(1.0), "x")
        yield sim.timeout(3.0)
        tso.finish("w", "commit")

    def recovery():
        yield sim.timeout(0.5)
        granted = yield from tso.stable_read_gate("x")
        times.append((granted, sim.now))

    sim.process(writer())
    sim.process(recovery())
    sim.run()
    assert times == [(True, 3.0)]


def test_stable_read_gate_immediate_when_clean(setup):
    sim, tso = setup
    assert run_gen(sim, tso.stable_read_gate("x")) is True


def test_newer_uncommitted_write_does_not_block_older_reader(setup):
    """An older reader conflicting with a NEWER uncommitted write is
    simply too late — it must not wait for that write's fate."""
    sim, tso = setup
    assert run_gen(sim, tso.begin_write("w", ts(5.0), "x"))[0]
    granted, reason = run_gen(sim, tso.begin_read("r", ts(1.0, pid=2), "x"))
    assert not granted and reason == REJECTED_TOO_LATE
