"""Unit tests for Thomas majority voting and the missing-writes scheme."""

from repro import Cluster
from repro.protocols import MajorityProtocol, MissingWritesProtocol


def build(protocol, n=5, holders=None, seed=1):
    cluster = Cluster(processors=n, seed=seed, protocol=protocol)
    cluster.place("x", holders=holders or list(range(1, n + 1)), initial=0)
    cluster.start()
    return cluster


# -- majority -----------------------------------------------------------------

def test_majority_ignores_weights():
    cluster = Cluster(processors=3, seed=1, protocol=MajorityProtocol)
    cluster.place("x", holders={1: 100, 2: 1, 3: 1}, initial=0)
    cluster.start()
    protocol = cluster.protocol(1)
    r, w = protocol.thresholds("x")
    assert r == w == 2  # majority of 3 COPIES, weights ignored
    assert protocol.vote_weight("x", 1) == 1


def test_majority_read_and_write_cost():
    cluster = build(MajorityProtocol)
    write = cluster.write_once(1, "x", 5)
    cluster.run(until=40.0)
    read = cluster.read_once(2, "x")
    cluster.run(until=80.0)
    assert write.value[0] and read.value == (True, 5)
    metrics = cluster.total_metrics()
    assert metrics.physical_write_rpcs == 3       # majority write
    # read = 3 data accesses (majority); version round counted apart
    assert metrics.physical_read_rpcs - metrics.version_collect_rpcs == 3


def test_majority_tolerates_minority_partition():
    cluster = build(MajorityProtocol)
    cluster.injector.partition_at(5.0, [{1, 2, 3}, {4, 5}])
    cluster.run(until=10.0)
    good = cluster.write_once(1, "x", 9)
    bad = cluster.write_once(4, "x", 8)
    cluster.run(until=200.0)
    assert good.value == (True, 9)
    assert bad.value[0] is False


# -- missing writes -----------------------------------------------------------

def test_mw_healthy_mode_reads_one_copy():
    cluster = build(MissingWritesProtocol)
    read = cluster.read_once(3, "x")
    cluster.run(until=30.0)
    assert read.value == (True, 0)
    assert cluster.total_metrics().physical_read_rpcs == 1


def test_mw_write_with_down_copy_succeeds_and_logs():
    cluster = build(MissingWritesProtocol)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    write = cluster.write_once(1, "x", 42)
    cluster.run(until=80.0)
    assert write.value == (True, 42)
    # p5's copy became a missing-write entry; logging cost was counted.
    assert cluster.protocol(1)._missing.get("x") == {5}
    assert cluster.total_metrics().transfer_units >= 1


def test_mw_failure_mode_reads_majority():
    cluster = build(MissingWritesProtocol)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    cluster.write_once(1, "x", 42)
    cluster.run(until=80.0)
    before = cluster.total_metrics()
    read_rpcs_before = before.physical_read_rpcs
    read = cluster.read_once(2, "x")
    cluster.run(until=160.0)
    assert read.value == (True, 42)
    after = cluster.total_metrics()
    data_reads = (after.physical_read_rpcs - after.version_collect_rpcs) - \
                 (read_rpcs_before - before.version_collect_rpcs)
    assert data_reads >= 3, "failure-mode reads must assemble a majority"


def test_mw_note_broadcast_switches_everyone():
    cluster = build(MissingWritesProtocol)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    cluster.write_once(1, "x", 42)
    cluster.run(until=80.0)
    for pid in (1, 2, 3, 4):
        assert cluster.protocol(pid)._missing.get("x") == {5}


def test_mw_repair_returns_to_normal_mode():
    cluster = build(MissingWritesProtocol)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    cluster.write_once(1, "x", 42)
    cluster.run(until=80.0)
    cluster.injector.recover_at(81.0, 5)
    # give the repair loop (period pi) a few cycles
    cluster.run(until=81.0 + 5 * cluster.config.pi)
    for pid in cluster.pids:
        assert not cluster.protocol(pid)._missing.get("x"), (
            f"p{pid} still in failure mode"
        )
    value, _ = cluster.processor(5).store.peek("x")
    assert value == 42, "repair must push the missed value to p5"
    read = cluster.read_once(3, "x")
    cost_before = cluster.total_metrics().physical_read_rpcs
    cluster.run(until=cluster.sim.now + 30.0)
    assert read.value == (True, 42)
    assert cluster.total_metrics().physical_read_rpcs == cost_before + 1


def test_mw_no_majority_write_aborts():
    cluster = build(MissingWritesProtocol)
    for pid in (3, 4, 5):
        cluster.injector.crash_at(5.0, pid)
    cluster.run(until=10.0)
    write = cluster.write_once(1, "x", 1)
    cluster.run(until=200.0)
    assert write.value[0] is False
