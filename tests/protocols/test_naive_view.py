"""Unit tests for the naive-view strawman protocol."""

from repro import Cluster
from repro.protocols import NaiveViewProtocol, protocol_factory


def build(n=3, seed=1):
    cluster = Cluster(processors=n, seed=seed, protocol=NaiveViewProtocol)
    cluster.place("x", holders=list(range(1, n + 1)), initial=0)
    cluster.start()
    return cluster


def test_view_starts_full():
    cluster = build()
    assert cluster.protocol(1).view == {1, 2, 3}


def test_refresh_view_is_closed_neighbourhood():
    cluster = build()
    cluster.graph.cut_link(1, 2)
    for pid in cluster.pids:
        cluster.protocol(pid).refresh_view()
    assert cluster.protocol(1).view == {1, 3}
    assert cluster.protocol(2).view == {2, 3}
    assert cluster.protocol(3).view == {1, 2, 3}  # C still sees both


def test_auto_refresh_follows_topology():
    cluster = build()
    cluster.injector.partition_at(5.0, [{1}, {2, 3}])
    cluster.run(until=5.0 + 2 * cluster.config.pi)
    assert cluster.protocol(1).view == {1}
    assert cluster.protocol(2).view == {2, 3}


def test_auto_refresh_can_be_disabled():
    cluster = build()
    cluster.protocol(1).auto_refresh = False
    cluster.injector.partition_at(5.0, [{1}, {2, 3}])
    cluster.run(until=5.0 + 3 * cluster.config.pi)
    assert cluster.protocol(1).view == {1, 2, 3}  # stale on purpose


def test_set_view_scenario_hook():
    cluster = build()
    cluster.protocol(1).set_view({1, 9, 7})
    assert cluster.protocol(1).view == {1, 9, 7}


def test_majority_gate_on_local_view():
    cluster = build()
    cluster.protocol(1).auto_refresh = False
    cluster.protocol(1).set_view({1})
    read = cluster.read_once(1, "x")
    cluster.run(until=30.0)
    assert read.value == (False, "inaccessible")


def test_write_targets_view_intersection():
    """The naive protocol writes only the in-view copies — the root of
    Example 1's anomaly."""
    cluster = build()
    cluster.graph.cut_link(1, 2)
    for pid in cluster.pids:
        cluster.protocol(pid).refresh_view()
    write = cluster.write_once(1, "x", 5)
    cluster.run(until=30.0)
    assert write.value == (True, 5)
    assert cluster.processor(1).store.peek("x")[0] == 5
    assert cluster.processor(3).store.peek("x")[0] == 5
    assert cluster.processor(2).store.peek("x")[0] == 0  # missed


def test_healthy_cluster_behaves_correctly():
    cluster = build(seed=5)

    def increment(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value + 1)
        return value

    for pid in (1, 2, 3):
        cluster.submit(pid, increment)
        cluster.run(until=cluster.sim.now + 25.0)
    assert cluster.processor(2).store.peek("x")[0] == 3
    assert cluster.check_one_copy_serializable()


def test_protocol_factory_registry():
    import pytest

    assert protocol_factory("naive-view") is NaiveViewProtocol
    from repro.core.protocol import VirtualPartitionProtocol
    assert protocol_factory("virtual-partitions") is VirtualPartitionProtocol
    with pytest.raises(KeyError):
        protocol_factory("paxos")
