"""Unit tests for the read-one/write-all baseline."""

from repro import Cluster
from repro.protocols import RowaProtocol


def build(n=5, seed=1):
    cluster = Cluster(processors=n, seed=seed, protocol=RowaProtocol)
    cluster.place("x", holders=list(range(1, n + 1)), initial=0)
    cluster.start()
    return cluster


def test_read_costs_one_access():
    cluster = build()
    read = cluster.read_once(2, "x")
    cluster.run(until=30.0)
    assert read.value == (True, 0)
    metrics = cluster.total_metrics()
    assert metrics.physical_read_rpcs == 1
    assert metrics.local_reads == 1  # p2 holds a copy: read locally


def test_write_touches_every_copy():
    cluster = build()
    write = cluster.write_once(1, "x", 7)
    cluster.run(until=30.0)
    assert write.value == (True, 7)
    assert cluster.total_metrics().physical_write_rpcs == 5
    for pid in cluster.pids:
        value, _ = cluster.processor(pid).store.peek("x")
        assert value == 7


def test_single_crashed_copy_blocks_writes():
    cluster = build()
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    write = cluster.write_once(1, "x", 7)
    cluster.run(until=120.0)
    assert write.value[0] is False


def test_reads_fail_over_to_next_copy():
    cluster = build()
    cluster.injector.crash_at(5.0, 2)
    cluster.run(until=10.0)
    read = cluster.read_once(2, "x")  # p2 itself crashed; client at p2...
    cluster.run(until=60.0)
    # a crashed processor cannot run clients; use p1 reading with p2 down
    cluster2 = build(seed=3)
    cluster2.injector.crash_at(5.0, 1)  # p1's own copy is gone
    cluster2.run(until=10.0)
    cluster2.processors[1].recover()  # client node itself stays alive
    cluster2.graph.recover_node(1)
    cluster2.graph.cut_link(1, 2)  # nearest remote copy unreachable
    read2 = cluster2.read_once(1, "x")
    cluster2.run(until=120.0)
    assert read2.value[0] is True  # failed over past the dead link


def test_no_copy_anywhere_aborts_read():
    cluster = Cluster(processors=3, seed=1, protocol=RowaProtocol)
    cluster.place("x", holders=[2], initial=0)
    cluster.start()
    cluster.injector.crash_at(1.0, 2)
    cluster.run(until=5.0)
    read = cluster.read_once(1, "x")
    cluster.run(until=120.0)
    assert read.value[0] is False


def test_availability_predicate():
    cluster = build()
    assert cluster.protocol(1).available("x", write=True)
    cluster.graph.crash_node(5)
    assert not cluster.protocol(1).available("x", write=True)
    assert cluster.protocol(1).available("x", write=False)


def test_sequential_increments_are_1sr():
    cluster = build()

    def increment(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value + 1)
        return value

    for pid in (1, 2, 3):
        cluster.submit(pid, increment)
        cluster.run(until=cluster.sim.now + 25.0)
    value, _ = cluster.processor(4).store.peek("x")
    assert value == 3
    assert cluster.check_one_copy_serializable()
