"""Pin ProtocolMetrics.merge to the dataclass's full field list.

``merge`` iterates ``dataclasses.fields()`` so a counter added later is
aggregated automatically.  The test below sets every field to a
distinct value, so any hand-copied field list that forgets one fails
on exactly that field's name.
"""

from dataclasses import fields

from repro.protocols.base import ProtocolMetrics


def test_merge_covers_every_field():
    a = ProtocolMetrics()
    b = ProtocolMetrics()
    for index, spec in enumerate(fields(ProtocolMetrics), start=1):
        if isinstance(getattr(a, spec.name), dict):
            setattr(a, spec.name, {"only-a": index, "both": 1})
            setattr(b, spec.name, {"only-b": 5, "both": 2})
        else:
            setattr(a, spec.name, index)
            setattr(b, spec.name, 100)
    merged = a.merge(b)
    for index, spec in enumerate(fields(ProtocolMetrics), start=1):
        value = getattr(merged, spec.name)
        if isinstance(value, dict):
            assert value == {"only-a": index, "only-b": 5,
                             "both": 3}, spec.name
        else:
            assert value == index + 100, spec.name


def test_merge_does_not_mutate_its_inputs():
    a = ProtocolMetrics(logical_reads=1, by_reason={"x": 1})
    b = ProtocolMetrics(logical_reads=2, by_reason={"x": 2})
    merged = a.merge(b)
    assert merged.logical_reads == 3 and merged.by_reason == {"x": 3}
    assert a.logical_reads == 1 and a.by_reason == {"x": 1}
    assert b.logical_reads == 2 and b.by_reason == {"x": 2}
