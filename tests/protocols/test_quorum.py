"""Unit tests for Gifford weighted voting."""

import pytest

from repro import Cluster
from repro.protocols import QuorumProtocol


def build(n=5, holders=None, seed=1, **proto_kwargs):
    def factory(*args):
        return QuorumProtocol(*args, **proto_kwargs)

    cluster = Cluster(processors=n, seed=seed,
                      protocol=factory if proto_kwargs else QuorumProtocol)
    cluster.place("x", holders=holders or list(range(1, n + 1)), initial=0)
    cluster.start()
    return cluster


def test_default_thresholds_majority_pair():
    cluster = build(5)
    protocol = cluster.protocol(1)
    r, w = protocol.thresholds("x")
    assert w == 3 and r == 3
    assert r + w > protocol.total_votes("x")


def test_weighted_thresholds():
    cluster = Cluster(processors=3, seed=1, protocol=QuorumProtocol)
    cluster.place("x", holders={1: 3, 2: 1, 3: 1}, initial=0)
    cluster.start()
    protocol = cluster.protocol(2)
    r, w = protocol.thresholds("x")
    assert w == 3  # floor(5/2)+1
    assert r == 3
    # p1 alone carries a full write quorum
    assert protocol.vote_weight("x", 1) == 3


def test_invalid_explicit_quorums_rejected():
    cluster = build(5, read_quorum=1, write_quorum=2)
    with pytest.raises(ValueError):
        cluster.protocol(1).thresholds("x")


def test_non_majority_write_quorum_rejected():
    cluster = build(5, read_quorum=5, write_quorum=2)
    with pytest.raises(ValueError):
        cluster.protocol(1).thresholds("x")


def test_read_returns_highest_version():
    cluster = build(5)
    cluster.write_once(1, "x", "v1")
    cluster.run(until=30.0)
    cluster.write_once(2, "x", "v2")
    cluster.run(until=60.0)
    read = cluster.read_once(3, "x")
    cluster.run(until=90.0)
    assert read.value == (True, "v2")


def test_write_after_read_skips_version_round():
    cluster = build(5)

    def body(txn):
        value = yield from txn.read("x")
        yield from txn.write("x", value if value else "w")
        return value

    out = cluster.submit(1, body)
    cluster.run(until=60.0)
    assert out.value[0] is True
    assert cluster.total_metrics().version_collect_rpcs == 0


def test_blind_write_pays_version_round():
    cluster = build(5)
    out = cluster.write_once(1, "x", "blind")
    cluster.run(until=60.0)
    assert out.value[0] is True
    assert cluster.total_metrics().version_collect_rpcs == 3


def test_survives_minority_crash():
    cluster = build(5)
    cluster.injector.crash_at(5.0, 4)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    write = cluster.write_once(1, "x", 42)
    cluster.run(until=80.0)
    assert write.value == (True, 42)
    read = cluster.read_once(2, "x")
    cluster.run(until=160.0)
    assert read.value == (True, 42)


def test_majority_crash_blocks_access():
    cluster = build(5)
    for pid in (3, 4, 5):
        cluster.injector.crash_at(5.0, pid)
    cluster.run(until=10.0)
    write = cluster.write_once(1, "x", 42)
    cluster.run(until=200.0)
    assert write.value[0] is False


def test_recovered_copy_catches_up_via_version_rule():
    """A stale copy rejoining simply loses version races; reads keep
    returning the newest value because quorums intersect."""
    cluster = build(5)
    cluster.injector.crash_at(5.0, 5)
    cluster.run(until=10.0)
    cluster.write_once(1, "x", "during-crash")
    cluster.run(until=60.0)
    cluster.injector.recover_at(61.0, 5)
    cluster.run(until=70.0)
    read = cluster.read_once(5, "x")
    cluster.run(until=140.0)
    assert read.value == (True, "during-crash")


def test_history_is_one_copy_serializable():
    cluster = build(5)
    for pid, value in [(1, "a"), (2, "b"), (3, "c")]:
        cluster.write_once(pid, "x", value)
        cluster.run(until=cluster.sim.now + 30.0)
    reads = [cluster.read_once(p, "x") for p in (4, 5)]
    cluster.run(until=cluster.sim.now + 60.0)
    assert all(r.value[0] for r in reads)
    assert cluster.check_one_copy_serializable()


def test_availability_predicate_uses_reachability():
    cluster = build(5)
    cluster.graph.partition([{1, 2, 3}, {4, 5}])
    assert cluster.protocol(1).available("x", write=True)
    assert not cluster.protocol(4).available("x", write=True)
    assert not cluster.protocol(4).available("x", write=False)
