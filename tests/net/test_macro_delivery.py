"""Edge cases of macro-event delivery (batched envelope draining).

In batched mode an envelope drains through the destination's inline
handler as ONE kernel dispatch — these tests pin the corner behavior
the golden-trace pin cannot isolate: a destination dying mid-drain, an
in-flight cut killing the whole envelope, duplicate replies riding one
envelope, trace ordering within a drain, and a ``StopSimulation``
raised by a woken waiter halfway through the carry list.
"""

import random

from repro.net import CommGraph, FixedLatency, Message, Network
from repro.node.processor import Processor
from repro.sim import Simulator, StopSimulation


def build_net(window=0.5, n=3):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1),
                  batch_window=window)
    return sim, graph, net


def build_processors(window=0.5, n=2):
    sim, graph, net = build_net(window=window, n=n)
    procs = {pid: Processor(pid, sim, net) for pid in graph.nodes}
    return sim, graph, net, procs


class RecordingTracer:
    def __init__(self):
        self.events = []

    def emit(self, etype, **fields):
        self.events.append((etype, fields))


def test_envelope_drains_as_one_macro_wakeup_in_carry_order():
    sim, _, net = build_net()
    seen = []
    handler = seen.append
    net.register(2, handler, inline=lambda m: seen.append(("inline", m.kind)))
    for kind in ("a", "b", "c"):
        net.send(Message(src=1, dst=2, kind=kind))
    sim.run()
    # one envelope, one macro wakeup, three per-message deliveries, in
    # the order the messages were carried
    assert seen == [("inline", "a"), ("inline", "b"), ("inline", "c")]
    assert net.stats.envelopes == 1
    assert net.stats.macro_wakeups == 1
    assert net.stats.delivered == 3


def test_unbatched_window_never_uses_inline_handler():
    sim, _, net = build_net(window=0.0)
    classic, inline = [], []
    net.register(2, classic.append, inline=inline.append)
    net.send(Message(src=1, dst=2, kind="a"))
    sim.run()
    assert [m.kind for m in classic] == ["a"]
    assert inline == []
    assert net.stats.macro_wakeups == 0


def test_destination_dying_mid_drain_filters_rest_of_envelope():
    """The first carried message wakes a consumer that kills the
    processor; the remaining carried messages must be filtered by the
    aliveness check, exactly like separately-delivered ones."""
    sim, _, net, procs = build_processors()
    p2 = procs[2]
    got = []

    def consumer():
        message = yield p2.receive("data")
        got.append(message.payload["i"])
        p2.alive = False  # crash point: mid-drain, after one message

    sim.process(consumer(), name="consumer")
    for i in range(3):
        procs[1].send(2, "data", {"i": i})
    sim.run()
    # network accounting sees the whole envelope; the dead processor
    # swallowed everything after the crash point
    assert net.stats.macro_wakeups == 1
    assert net.stats.delivered == 3
    assert got == [0]
    assert len(p2.mailbox("data")) == 0


def test_in_flight_cut_drops_the_whole_envelope():
    sim, graph, net = build_net()
    seen = []
    net.register(2, seen.append, inline=seen.append)
    net.send(Message(src=1, dst=2, kind="a"))
    net.send(Message(src=1, dst=2, kind="b"))
    # sever the link while the envelope is in flight (after the 0.5
    # flush, before the 1.0 arrival)
    cut = sim.timeout(0.75)
    cut.add_callback(lambda _e: graph.cut_link(1, 2))
    sim.run()
    assert seen == []
    assert net.stats.macro_wakeups == 0
    assert net.stats.dropped_in_flight == 2


def test_duplicate_replies_riding_one_envelope_count_late():
    """Two replies to the same RPC coalesce into one envelope: the
    first fires the waiter inline, the duplicate is filtered as a late
    reply — not delivered to a mailbox, not crashing the drain."""
    sim, _, net, procs = build_processors()
    p1, p2 = procs[1], procs[2]
    outcome = {}

    def server():
        request = yield p2.receive("ping")
        p2.reply(request, "pong", {"n": 1})
        p2.reply(request, "pong", {"n": 2})  # duplicate, same window

    def client():
        response = yield from p1.rpc(2, "ping", {}, timeout=10.0)
        outcome["reply"] = response.payload["n"]

    sim.process(server(), name="server")
    sim.process(client(), name="client")
    sim.run()
    assert outcome["reply"] == 1
    assert p1.transport.late_replies == 1
    assert len(p1.mailbox("pong")) == 0


def test_per_message_traces_keep_carry_order_within_a_drain():
    sim, _, net = build_net()
    net.tracer = tracer = RecordingTracer()
    net.register(2, lambda m: None, inline=lambda m: None)
    for kind in ("a", "b", "c"):
        net.send(Message(src=1, dst=2, kind=kind))
    sim.run()
    recvs = [(e, f) for e, f in tracer.events if e == "msg.recv"]
    # one msg.recv per carried message, in carry order, all stamped at
    # the envelope's single arrival instant
    assert [f["kind"] for _, f in recvs] == ["a", "b", "c"]
    sends = [f["seq"] for e, f in tracer.events if e == "msg.send"]
    assert [f["seq"] for _, f in recvs] == sends


def test_stop_simulation_mid_drain_finishes_the_envelope():
    sim, _, net = build_net()
    seen = []

    def inline(message):
        seen.append(message.kind)
        if message.kind == "halt":
            raise StopSimulation("halt requested")

    net.register(2, lambda m: None, inline=inline)
    for kind in ("halt", "tail1", "tail2"):
        net.send(Message(src=1, dst=2, kind=kind))
    # a later event that must never run: the stop takes effect at the
    # envelope's arrival instant, after the drain completes
    later = sim.timeout(50.0)
    later.add_callback(lambda _e: seen.append("too-late"))
    sim.run()
    assert seen == ["halt", "tail1", "tail2"]
    assert net.stats.delivered == 3
    assert sim.now < 50.0
