"""Unit tests for the nemesis: fault-schedule planning and application."""

import random

import pytest

from repro.net import (
    CommGraph,
    FailureInjector,
    FaultAction,
    NemesisMix,
    apply_schedule,
    plan_nemesis,
)
from repro.net.nemesis import KINDS
from repro.sim import Simulator


def test_plan_is_deterministic_for_a_seed():
    mix = NemesisMix()
    one = plan_nemesis(random.Random(5), [1, 2, 3, 4], mix, horizon=200)
    two = plan_nemesis(random.Random(5), [1, 2, 3, 4], mix, horizon=200)
    assert one == two
    assert one, "a 200-unit horizon must plan at least one action"


def test_plan_respects_horizon_and_start():
    actions = plan_nemesis(random.Random(1), [1, 2, 3], horizon=100,
                           start=10.0)
    assert all(10.0 <= a.time <= 100.0 for a in actions)
    assert all(a.time + a.hold <= 100.0 + 1e-9 for a in actions)


def test_plan_draws_only_known_kinds():
    actions = plan_nemesis(random.Random(2), [1, 2, 3, 4], horizon=500)
    assert {a.kind for a in actions} <= set(KINDS)


def test_zero_weight_kind_never_planned():
    mix = NemesisMix(crash=0.0, cut=1.0, oneway=0.0, surge=0.0, grey=0.0,
                     dup=0.0, flap=0.0, partition=0.0)
    actions = plan_nemesis(random.Random(3), [1, 2, 3], mix, horizon=500)
    assert actions
    assert {a.kind for a in actions} == {"cut"}


def test_fault_action_dict_round_trip():
    actions = plan_nemesis(random.Random(4), [1, 2, 3, 4], horizon=300)
    for action in actions:
        restored = FaultAction.from_dict(action.to_dict())
        assert restored == action


def test_partition_args_survive_json_round_trip():
    """Partition blocks are nested tuples; JSON turns them into lists
    and from_dict must re-freeze them."""
    import json
    action = FaultAction(time=5.0, kind="partition",
                         args=((1, 2), (3, 4)), hold=10.0)
    wire = json.loads(json.dumps(action.to_dict()))
    assert FaultAction.from_dict(wire) == action


def test_apply_schedule_cut_and_undo():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph)
    apply_schedule(injector, [
        FaultAction(time=1.0, kind="cut", args=(1, 2), hold=2.0),
    ])
    sim.run(until=1.5)
    assert not graph.has_edge(1, 2)
    sim.run(until=4.0)
    assert graph.has_edge(1, 2)


def test_apply_schedule_partition_is_composable():
    """A nemesis partition is pairwise inter-block cuts under its own
    actor, so undoing it never clobbers someone else's cut."""
    sim = Simulator()
    graph = CommGraph([1, 2, 3, 4])
    injector = FailureInjector(sim, graph)
    injector._cut(1, 3)  # scripted cut, independent of the nemesis
    apply_schedule(injector, [
        FaultAction(time=1.0, kind="partition", args=((1, 2), (3, 4)),
                    hold=2.0),
    ])
    sim.run(until=1.5)
    assert sorted(map(sorted, graph.clusters())) == [[1, 2], [3, 4]]
    sim.run(until=5.0)
    assert not graph.has_edge(1, 3), "scripted cut must survive the undo"
    assert graph.has_edge(1, 4) and graph.has_edge(2, 3)


def test_apply_schedule_crash_and_recover():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    apply_schedule(injector, [
        FaultAction(time=1.0, kind="crash", args=(2,), hold=3.0),
    ])
    sim.run(until=2.0)
    assert not graph.node_up(2)
    sim.run(until=5.0)
    assert graph.node_up(2)


def test_apply_schedule_rejects_unknown_kind():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    with pytest.raises(ValueError):
        apply_schedule(injector, [
            FaultAction(time=1.0, kind="meteor", args=(), hold=1.0),
        ])


def test_mix_weights_complete():
    assert set(NemesisMix().weights()) == set(KINDS)
