"""Unit tests for the communication graph."""

import pytest

from repro.net import CommGraph


def make_graph(n=4):
    return CommGraph(range(1, n + 1))


def test_starts_as_single_clique():
    graph = make_graph(5)
    assert graph.clusters() == [{1, 2, 3, 4, 5}]
    assert graph.is_clique({1, 2, 3, 4, 5})
    assert graph.is_transitive()


def test_empty_node_set_rejected():
    with pytest.raises(ValueError):
        CommGraph([])


def test_self_communication_always_possible_while_up():
    graph = make_graph()
    assert graph.has_edge(2, 2)
    graph.crash_node(2)
    assert not graph.has_edge(2, 2)


def test_cut_link_breaks_only_that_pair():
    graph = make_graph(3)
    graph.cut_link(1, 2)
    assert not graph.has_edge(1, 2)
    assert graph.has_edge(1, 3)
    assert graph.has_edge(2, 3)


def test_figure_1_non_transitive_graph():
    """Fig. 1: A-B cut, both still talk to C — cluster is not a clique."""
    graph = CommGraph([1, 2, 3])  # 1=A, 2=B, 3=C
    graph.cut_link(1, 2)
    assert graph.clusters() == [{1, 2, 3}]
    assert not graph.is_clique({1, 2, 3})
    assert not graph.is_transitive()
    assert graph.neighbors(3) == {1, 2}
    assert graph.neighbors(1) == {3}


def test_crash_isolates_node_into_trivial_cluster():
    graph = make_graph(3)
    graph.crash_node(2)
    clusters = graph.clusters()
    assert {2} in clusters
    assert {1, 3} in clusters
    assert graph.neighbors(2) == set()
    assert not graph.node_up(2)


def test_recover_restores_edges():
    graph = make_graph(3)
    graph.crash_node(2)
    graph.recover_node(2)
    assert graph.clusters() == [{1, 2, 3}]
    assert graph.node_up(2)


def test_cut_survives_crash_recover_cycle():
    graph = make_graph(3)
    graph.cut_link(1, 2)
    graph.crash_node(1)
    graph.recover_node(1)
    assert not graph.has_edge(1, 2)
    assert graph.has_edge(1, 3)


def test_partition_into_blocks():
    graph = make_graph(4)
    graph.partition([{1, 2}, {3, 4}])
    assert sorted(map(sorted, graph.clusters())) == [[1, 2], [3, 4]]
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(2, 3)


def test_partition_with_implicit_block():
    graph = make_graph(4)
    graph.partition([{1}])
    assert sorted(map(sorted, graph.clusters())) == [[1], [2, 3, 4]]


def test_repartition_heals_intra_block_links():
    """Example 2's shape: {A,B},{C,D} -> {B,C},{A,D}."""
    graph = make_graph(4)  # 1=A 2=B 3=C 4=D
    graph.partition([{1, 2}, {3, 4}])
    graph.partition([{2, 3}, {1, 4}])
    assert sorted(map(sorted, graph.clusters())) == [[1, 4], [2, 3]]
    assert graph.has_edge(2, 3)
    assert graph.has_edge(1, 4)
    assert not graph.has_edge(1, 2)
    assert not graph.has_edge(3, 4)


def test_partition_rejects_overlap_and_unknowns():
    graph = make_graph(4)
    with pytest.raises(ValueError):
        graph.partition([{1, 2}, {2, 3}])
    with pytest.raises(ValueError):
        graph.partition([{1, 99}])


def test_heal_all_restores_clique_but_not_crashes():
    graph = make_graph(3)
    graph.partition([{1}, {2, 3}])
    graph.crash_node(3)
    graph.heal_all()
    assert graph.has_edge(1, 2)
    assert not graph.node_up(3)
    assert {3} in graph.clusters()


def test_version_counter_tracks_changes():
    graph = make_graph(3)
    v0 = graph.version
    graph.cut_link(1, 2)
    graph.heal_link(1, 2)
    graph.crash_node(1)
    graph.recover_node(1)
    graph.heal_all()
    assert graph.version == v0 + 5


def test_unknown_processor_raises():
    graph = make_graph(3)
    with pytest.raises(KeyError):
        graph.has_edge(1, 42)
    with pytest.raises(KeyError):
        graph.neighbors(42)


def test_self_edge_rejected():
    graph = make_graph(3)
    with pytest.raises(ValueError):
        graph.cut_link(2, 2)


def test_cluster_of():
    graph = make_graph(4)
    graph.partition([{1, 2}, {3, 4}])
    assert graph.cluster_of(1) == {1, 2}
    assert graph.cluster_of(4) == {3, 4}


def test_alive_nodes():
    graph = make_graph(3)
    graph.crash_node(2)
    assert graph.alive_nodes() == {1, 3}


# -- directed (one-way) cuts -------------------------------------------------


def test_oneway_cut_blocks_only_one_direction():
    graph = make_graph(3)
    graph.cut_link_oneway(1, 2)
    assert not graph.can_send(1, 2)
    assert graph.can_send(2, 1)
    assert graph.can_send(1, 3) and graph.can_send(3, 1)


def test_oneway_cut_is_not_an_edge():
    """has_edge is the symmetric relation — an asymmetric link is no
    clique edge, so A2 reasoning never counts it."""
    graph = make_graph(3)
    graph.cut_link_oneway(1, 2)
    assert not graph.has_edge(1, 2)
    assert not graph.has_edge(2, 1)


def test_oneway_cut_makes_graph_non_transitive():
    graph = make_graph(3)
    graph.cut_link_oneway(1, 2)
    # 1 and 2 still connect through 3, so one cluster — but not a clique.
    assert graph.clusters() == [{1, 2, 3}]
    assert not graph.is_clique({1, 2, 3})
    assert not graph.is_transitive()


def test_oneway_cuts_in_both_directions_act_like_a_full_cut():
    graph = make_graph(2)
    graph.cut_link_oneway(1, 2)
    graph.cut_link_oneway(2, 1)
    assert not graph.can_send(1, 2)
    assert not graph.can_send(2, 1)
    assert graph.clusters() == [{1}, {2}]
    graph.heal_link_oneway(1, 2)
    assert graph.can_send(1, 2)
    assert not graph.can_send(2, 1)
    assert not graph.has_edge(1, 2)


def test_oneway_self_edge_rejected():
    graph = make_graph(2)
    with pytest.raises(ValueError):
        graph.cut_link_oneway(1, 1)


def test_partition_discards_intra_block_oneway_cuts():
    graph = make_graph(4)
    graph.cut_link_oneway(1, 2)   # intra-block: healed by the partition
    graph.cut_link_oneway(3, 1)   # inter-block: subsumed by the full cut
    graph.partition([{1, 2}, {3, 4}])
    assert graph.can_send(1, 2) and graph.can_send(2, 1)
    assert not graph.can_send(3, 1)
    graph.heal_all()
    assert graph.can_send(3, 1)
    assert graph.is_transitive()


def test_heal_all_clears_oneway_cuts():
    graph = make_graph(3)
    graph.cut_link_oneway(2, 3)
    graph.heal_all()
    assert graph.can_send(2, 3)


def test_crash_dominates_oneway_state():
    graph = make_graph(3)
    graph.cut_link_oneway(1, 2)
    graph.crash_node(2)
    assert not graph.can_send(2, 1)
    assert not graph.can_send(1, 2)
    graph.recover_node(2)
    assert graph.can_send(2, 1)      # recovery restores the live direction
    assert not graph.can_send(1, 2)  # but never heals the one-way cut
