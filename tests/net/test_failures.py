"""Unit tests for failure injection."""

import random

import pytest

from repro.net import CommGraph, FailureInjector, RandomFailures
from repro.sim import Simulator


class FakeProcessor:
    def __init__(self):
        self.events = []

    def crash(self):
        self.events.append("crash")

    def recover(self):
        self.events.append("recover")


def test_scripted_crash_and_recover():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    proc = FakeProcessor()
    injector = FailureInjector(sim, graph, {2: proc})
    injector.crash_at(5.0, 2)
    injector.recover_at(10.0, 2)

    sim.run(until=7.0)
    assert not graph.node_up(2)
    assert proc.events == ["crash"]

    sim.run(until=12.0)
    assert graph.node_up(2)
    assert proc.events == ["crash", "recover"]
    assert [label for _, label in injector.log] == ["crash(2)", "recover(2)"]


def test_scripted_link_cut_and_heal():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(1.0, 1, 2)
    injector.heal_at(2.0, 1, 2)
    sim.run(until=1.5)
    assert not graph.has_edge(1, 2)
    sim.run(until=3.0)
    assert graph.has_edge(1, 2)


def test_scripted_partition_sequence():
    sim = Simulator()
    graph = CommGraph([1, 2, 3, 4])
    injector = FailureInjector(sim, graph)
    injector.partition_at(1.0, [{1, 2}, {3, 4}])
    injector.partition_at(2.0, [{2, 3}, {1, 4}])
    injector.heal_all_at(3.0)
    sim.run(until=1.5)
    assert sorted(map(sorted, graph.clusters())) == [[1, 2], [3, 4]]
    sim.run(until=2.5)
    assert sorted(map(sorted, graph.clusters())) == [[1, 4], [2, 3]]
    sim.run(until=3.5)
    assert graph.clusters() == [{1, 2, 3, 4}]


def test_past_time_rejected():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        injector.crash_at(1.0, 1)


def test_at_accepts_now():
    """The boundary case: ``time == sim.now`` is a valid schedule and
    fires on the next kernel step, not a rejected past time."""
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    injector.crash_at(sim.now, 1)  # must not raise
    assert graph.node_up(1)        # not applied synchronously
    sim.run()
    assert not graph.node_up(1)
    assert injector.log == [(5.0, "crash(1)")]


def test_at_zero_at_boot():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(0.0, 1, 2)
    sim.run()
    assert not graph.has_edge(1, 2)


def test_late_bound_processor_map():
    sim = Simulator()
    graph = CommGraph([1])
    injector = FailureInjector(sim, graph)
    proc = FakeProcessor()
    injector.set_processors({1: proc})
    injector.crash_at(1.0, 1)
    sim.run()
    assert proc.events == ["crash"]


def test_random_failures_produce_crash_recover_pairs():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph, {p: FakeProcessor() for p in (1, 2, 3)})
    process = RandomFailures(
        injector, random.Random(42),
        node_mttf=10.0, node_mttr=2.0, horizon=200.0,
    )
    process.install()
    sim.run(until=400.0)
    crashes = [l for _, l in injector.log if "crash" in l]
    recovers = [l for _, l in injector.log if "recover" in l]
    assert crashes, "expected some random crashes in 200 time units"
    # Every crash is eventually repaired (horizon stops new crashes only).
    assert len(recovers) == len(crashes)
    assert graph.alive_nodes() == {1, 2, 3}


def test_random_failures_deterministic_given_seed():
    def run_once():
        sim = Simulator()
        graph = CommGraph([1, 2])
        injector = FailureInjector(sim, graph)
        RandomFailures(injector, random.Random(7), node_mttf=5.0,
                       node_mttr=1.0, horizon=100.0).install()
        sim.run(until=150.0)
        return injector.log

    assert run_once() == run_once()


def test_random_failures_validation():
    sim = Simulator()
    graph = CommGraph([1])
    injector = FailureInjector(sim, graph)
    with pytest.raises(ValueError):
        RandomFailures(injector, random.Random(1), node_mttf=-1.0)


def test_random_link_failures():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph)
    RandomFailures(injector, random.Random(3), link_mttf=5.0,
                   link_mttr=1.0, horizon=100.0).install()
    sim.run(until=150.0)
    cuts = [l for _, l in injector.log if "cut" in l]
    assert cuts
