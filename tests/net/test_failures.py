"""Unit tests for failure injection."""

import random

import pytest

from repro.net import CommGraph, FailureInjector, RandomFailures
from repro.sim import Simulator


class FakeProcessor:
    def __init__(self):
        self.events = []

    def crash(self):
        self.events.append("crash")

    def recover(self):
        self.events.append("recover")


def test_scripted_crash_and_recover():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    proc = FakeProcessor()
    injector = FailureInjector(sim, graph, {2: proc})
    injector.crash_at(5.0, 2)
    injector.recover_at(10.0, 2)

    sim.run(until=7.0)
    assert not graph.node_up(2)
    assert proc.events == ["crash"]

    sim.run(until=12.0)
    assert graph.node_up(2)
    assert proc.events == ["crash", "recover"]
    assert [label for _, label in injector.log] == ["crash(2)", "recover(2)"]


def test_scripted_link_cut_and_heal():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(1.0, 1, 2)
    injector.heal_at(2.0, 1, 2)
    sim.run(until=1.5)
    assert not graph.has_edge(1, 2)
    sim.run(until=3.0)
    assert graph.has_edge(1, 2)


def test_scripted_partition_sequence():
    sim = Simulator()
    graph = CommGraph([1, 2, 3, 4])
    injector = FailureInjector(sim, graph)
    injector.partition_at(1.0, [{1, 2}, {3, 4}])
    injector.partition_at(2.0, [{2, 3}, {1, 4}])
    injector.heal_all_at(3.0)
    sim.run(until=1.5)
    assert sorted(map(sorted, graph.clusters())) == [[1, 2], [3, 4]]
    sim.run(until=2.5)
    assert sorted(map(sorted, graph.clusters())) == [[1, 4], [2, 3]]
    sim.run(until=3.5)
    assert graph.clusters() == [{1, 2, 3, 4}]


def test_past_time_rejected():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        injector.crash_at(1.0, 1)


def test_at_accepts_now():
    """The boundary case: ``time == sim.now`` is a valid schedule and
    fires on the next kernel step, not a rejected past time."""
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    injector.crash_at(sim.now, 1)  # must not raise
    assert graph.node_up(1)        # not applied synchronously
    sim.run()
    assert not graph.node_up(1)
    assert injector.log == [(5.0, "crash(1)")]


def test_at_zero_at_boot():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(0.0, 1, 2)
    sim.run()
    assert not graph.has_edge(1, 2)


def test_late_bound_processor_map():
    sim = Simulator()
    graph = CommGraph([1])
    injector = FailureInjector(sim, graph)
    proc = FakeProcessor()
    injector.set_processors({1: proc})
    injector.crash_at(1.0, 1)
    sim.run()
    assert proc.events == ["crash"]


def test_random_failures_produce_crash_recover_pairs():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph, {p: FakeProcessor() for p in (1, 2, 3)})
    process = RandomFailures(
        injector, random.Random(42),
        node_mttf=10.0, node_mttr=2.0, horizon=200.0,
    )
    process.install()
    sim.run(until=400.0)
    crashes = [l for _, l in injector.log if "crash" in l]
    recovers = [l for _, l in injector.log if "recover" in l]
    assert crashes, "expected some random crashes in 200 time units"
    # Every crash is eventually repaired (horizon stops new crashes only).
    assert len(recovers) == len(crashes)
    assert graph.alive_nodes() == {1, 2, 3}


def test_random_failures_deterministic_given_seed():
    def run_once():
        sim = Simulator()
        graph = CommGraph([1, 2])
        injector = FailureInjector(sim, graph)
        RandomFailures(injector, random.Random(7), node_mttf=5.0,
                       node_mttr=1.0, horizon=100.0).install()
        sim.run(until=150.0)
        return injector.log

    assert run_once() == run_once()


def test_random_failures_validation():
    sim = Simulator()
    graph = CommGraph([1])
    injector = FailureInjector(sim, graph)
    with pytest.raises(ValueError):
        RandomFailures(injector, random.Random(1), node_mttf=-1.0)


def test_random_link_failures():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph)
    RandomFailures(injector, random.Random(3), link_mttf=5.0,
                   link_mttr=1.0, horizon=100.0).install()
    sim.run(until=150.0)
    cuts = [l for _, l in injector.log if "cut" in l]
    assert cuts


# -- ownership claims: concurrent fault actors -------------------------------


def test_random_heal_must_not_resurrect_scripted_cut():
    """Regression: a random link-repair used to silently heal a link a
    scripted ``cut_at`` deliberately held down."""
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector._cut(1, 2)             # scripted: down for the whole run
    injector._cut(1, 2, actor="rand-link(1,2)")
    injector._heal(1, 2, actor="rand-link(1,2)")
    assert not graph.has_edge(1, 2)  # script still owns the cut
    injector._heal(1, 2)             # the scripted heal releases it
    assert graph.has_edge(1, 2)


def test_random_recover_must_not_undo_scripted_crash():
    sim = Simulator()
    graph = CommGraph([1, 2])
    proc = FakeProcessor()
    injector = FailureInjector(sim, graph, {1: proc})
    injector._crash(1)                            # scripted claim
    injector._crash(1, actor="rand-node(1)")      # random claim on top
    injector._recover(1, actor="rand-node(1)")
    assert not graph.node_up(1)
    assert "recover" not in proc.events
    injector._recover(1)
    assert graph.node_up(1)
    assert proc.events == ["crash", "crash", "recover"]


def test_random_failures_skip_foreign_claimed_elements():
    """A RandomFailures cycle never piles onto (or repairs) an element
    another actor holds down."""
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(0.0, 1, 2)
    RandomFailures(injector, random.Random(3), link_mttf=2.0,
                   link_mttr=0.5, horizon=100.0).install()
    sim.run(until=200.0)
    assert not graph.has_edge(1, 2), "scripted cut survived random churn"
    random_cuts = [l for _, l in injector.log if l == "random-cut(1,2)"]
    assert random_cuts == [], "random process must skip the claimed link"


def test_partition_at_rewrites_claims():
    """partition_at stays authoritative: it clears intra-block claims
    (foreign ones included) and owns every inter-block cut."""
    sim = Simulator()
    graph = CommGraph([1, 2, 3, 4])
    injector = FailureInjector(sim, graph)
    injector._cut(1, 2, actor="nemesis#0")
    injector.partition_at(1.0, [{1, 2}, {3, 4}])
    sim.run(until=2.0)
    assert graph.has_edge(1, 2)
    assert injector.claims_on_link(1, 2) == frozenset()
    assert injector.claims_on_link(1, 3) == frozenset({"script"})


def test_heal_all_force_clears_link_claims():
    sim = Simulator()
    graph = CommGraph([1, 2, 3])
    injector = FailureInjector(sim, graph)
    injector._cut(1, 2, actor="nemesis#4")
    injector._cut_oneway(2, 3, actor="nemesis#5")
    injector.heal_all_at(1.0)
    sim.run(until=2.0)
    assert graph.has_edge(1, 2)
    assert graph.can_send(2, 3)
    assert injector.claims_on_link(1, 2) == frozenset()
    assert injector.claims_on_oneway(2, 3) == frozenset()


# -- edge cases ---------------------------------------------------------------


def test_recover_never_crashed_pid_is_harmless():
    sim = Simulator()
    graph = CommGraph([1, 2])
    proc = FakeProcessor()
    injector = FailureInjector(sim, graph, {1: proc})
    injector.recover_at(1.0, 1)
    sim.run(until=2.0)
    assert graph.node_up(1)
    assert proc.events == ["recover"]  # processors tolerate spurious recover


def test_cut_already_cut_link_needs_single_heal():
    """Cutting twice under one actor is idempotent — one heal restores."""
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_at(1.0, 1, 2)
    injector.cut_at(2.0, 1, 2)
    injector.heal_at(3.0, 1, 2)
    sim.run(until=4.0)
    assert graph.has_edge(1, 2)


def test_oneway_scripted_cut_and_heal():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.cut_oneway_at(1.0, 1, 2)
    injector.heal_oneway_at(2.0, 1, 2)
    sim.run(until=1.5)
    assert not graph.can_send(1, 2)
    assert graph.can_send(2, 1)
    sim.run(until=3.0)
    assert graph.can_send(1, 2)
    labels = [l for _, l in injector.log]
    assert labels == ["cut-oneway(1,2)", "heal-oneway(1,2)"]


def test_flap_link_schedule():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.flap_link_at(1.0, 1, 2, period=1.0, cycles=2)
    sim.run(until=1.5)
    assert not graph.has_edge(1, 2)
    sim.run(until=2.5)
    assert graph.has_edge(1, 2)
    sim.run(until=3.5)
    assert not graph.has_edge(1, 2)
    sim.run(until=5.0)
    assert graph.has_edge(1, 2)
    labels = [l for _, l in injector.log]
    assert labels == ["flap-cut(1,2)", "flap-heal(1,2)",
                      "flap-cut(1,2)", "flap-heal(1,2)"]


def test_flap_validation():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    with pytest.raises(ValueError):
        injector.flap_link_at(1.0, 1, 2, period=0.0, cycles=1)
    with pytest.raises(ValueError):
        injector.flap_link_at(1.0, 1, 2, period=1.0, cycles=0)


def test_transport_actions_require_network():
    sim = Simulator()
    graph = CommGraph([1, 2])
    injector = FailureInjector(sim, graph)
    injector.grey_loss_at(1.0, 1, 2, 0.5)
    with pytest.raises(RuntimeError):
        sim.run(until=2.0)
