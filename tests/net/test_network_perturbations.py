"""Unit tests for per-link transport perturbations (the grey-failure
knobs behind the nemesis: grey loss, delay surges, duplication storms)."""

import random

import pytest

from repro.net import CommGraph, FixedLatency, Message, Network
from repro.sim import Simulator


def build(n=3, **kwargs):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1), **kwargs)
    inboxes = {p: [] for p in graph.nodes}
    for p in graph.nodes:
        net.register(p, lambda m, box=inboxes[p]: box.append(m))
    return sim, graph, net, inboxes


def test_grey_loss_affects_only_its_direction():
    sim, _, net, inboxes = build()
    net.set_grey_loss(1, 2, 0.99)
    for _ in range(20):
        net.send(Message(src=1, dst=2, kind="ping"))
        net.send(Message(src=2, dst=1, kind="pong"))
    sim.run()
    assert len(inboxes[2]) == 20 - net.stats.dropped_lost
    assert net.stats.dropped_lost >= 15
    assert len(inboxes[1]) == 20  # the reverse route is untouched


def test_grey_loss_clears():
    sim, _, net, inboxes = build()
    net.set_grey_loss(1, 2, 0.99)
    net.clear_grey_loss(1, 2)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert len(inboxes[2]) == 1
    assert net.stats.dropped_lost == 0


def test_grey_loss_overrides_global_loss_prob():
    """A per-link entry replaces (not compounds) the global loss rate."""
    sim, _, net, inboxes = build(loss_prob=0.99)
    net.set_grey_loss(1, 2, 0.0)
    for _ in range(10):
        net.send(Message(src=1, dst=2, kind="ping"))
        net.send(Message(src=1, dst=3, kind="ping"))
    sim.run()
    assert len(inboxes[2]) == 10       # per-link 0.0 wins on this route
    assert len(inboxes[3]) < 10        # global 0.99 still applies elsewhere


def test_grey_loss_validation():
    _, _, net, _ = build()
    with pytest.raises(ValueError):
        net.set_grey_loss(1, 2, 1.5)


def test_delay_surge_stretches_latency():
    sim, _, net, inboxes = build()
    net.set_delay_surge(1, 2, 4.0)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert sim.now == pytest.approx(4.0)
    assert len(inboxes[2]) == 1
    assert net.stats.surged == 1
    assert net.stats.delivered == 1


def test_delay_surge_other_direction_unaffected():
    sim, _, net, inboxes = build()
    net.set_delay_surge(1, 2, 4.0)
    net.send(Message(src=2, dst=1, kind="pong"))
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert net.stats.surged == 0
    assert len(inboxes[1]) == 1


def test_delay_surge_clears():
    sim, _, net, _ = build()
    net.set_delay_surge(1, 2, 4.0)
    net.clear_delay_surge(1, 2)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert sim.now == pytest.approx(1.0)


def test_delay_surge_validation():
    _, _, net, _ = build()
    with pytest.raises(ValueError):
        net.set_delay_surge(1, 2, 0.5)


def test_dup_storm_duplicates_per_link():
    sim, _, net, inboxes = build()
    net.set_dup_storm(1, 2, 0.99)
    net.send(Message(src=1, dst=2, kind="ping"))
    net.send(Message(src=2, dst=1, kind="pong"))
    sim.run()
    assert len(inboxes[2]) == 1 + net.stats.duplicated
    assert net.stats.duplicated == 1  # seeded rng: the 0.99 draw hits
    assert len(inboxes[1]) == 1


def test_perturbed_links_lists_active_entries():
    _, _, net, _ = build()
    assert net.perturbed_links() == set()
    net.set_grey_loss(1, 2, 0.5)
    net.set_delay_surge(2, 3, 3.0)
    net.set_dup_storm(3, 1, 0.4)
    assert sorted(net.perturbed_links()) == [(1, 2), (2, 3), (3, 1)]
    net.clear_grey_loss(1, 2)
    net.clear_delay_surge(2, 3)
    net.clear_dup_storm(3, 1)
    assert net.perturbed_links() == set()


def test_default_transmit_path_unchanged_without_perturbations():
    """No perturbation entries: delivery times and stats are exactly
    the unperturbed transport's (the trace-identity guarantee)."""
    def run(perturb):
        sim, _, net, inboxes = build()
        if perturb:
            net.set_delay_surge(1, 3, 2.0)
            net.clear_delay_surge(1, 3)
        net.send(Message(src=1, dst=2, kind="ping"))
        sim.run()
        return sim.now, len(inboxes[2]), net.stats.snapshot()

    assert run(False) == run(True)
