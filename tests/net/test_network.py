"""Unit tests for the message transport."""

import random

import pytest

from repro.net import CommGraph, FixedLatency, Message, Network
from repro.sim import Simulator


def build(n=3, **kwargs):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, FixedLatency(1.0), random.Random(1), **kwargs)
    inboxes = {p: [] for p in graph.nodes}
    for p in graph.nodes:
        net.register(p, lambda m, box=inboxes[p]: box.append(m))
    return sim, graph, net, inboxes


def test_message_delivered_after_latency():
    sim, _, net, inboxes = build()
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert sim.now == 1.0
    assert [m.kind for m in inboxes[2]] == ["ping"]
    assert net.stats.sent == net.stats.delivered == 1


def test_send_on_cut_link_is_dropped():
    sim, graph, net, inboxes = build()
    graph.cut_link(1, 2)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert inboxes[2] == []
    assert net.stats.dropped_no_edge == 1


def test_link_cut_mid_flight_drops_message():
    sim, graph, net, inboxes = build()
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.timeout(0.5).add_callback(lambda e: graph.cut_link(1, 2))
    sim.run()
    assert inboxes[2] == []
    assert net.stats.dropped_in_flight == 1


def test_destination_crash_mid_flight_drops_message():
    sim, graph, net, inboxes = build()
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.timeout(0.5).add_callback(lambda e: graph.crash_node(2))
    sim.run()
    assert inboxes[2] == []
    assert net.stats.dropped > 0


def test_loss_probability_drops_some():
    sim, _, net, inboxes = build(loss_prob=0.5)
    for _ in range(100):
        net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert 0 < len(inboxes[2]) < 100
    assert net.stats.dropped_lost == 100 - len(inboxes[2])


def test_slow_messages_exceed_bound_but_arrive():
    sim, _, net, inboxes = build(slow_prob=0.99, slow_factor=5.0)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert len(inboxes[2]) == 1
    assert sim.now == pytest.approx(5.0)
    assert net.stats.slow == 1


def test_duplicates_counted_and_delivered():
    sim, _, net, inboxes = build(dup_prob=0.99)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert len(inboxes[2]) == 2
    assert net.stats.duplicated == 1


def test_by_kind_counters():
    sim, _, net, _ = build()
    net.send(Message(src=1, dst=2, kind="probe"))
    net.send(Message(src=1, dst=3, kind="probe"))
    net.send(Message(src=2, dst=3, kind="read"))
    sim.run()
    assert net.stats.by_kind == {"probe": 2, "read": 1}


def test_reply_envelope_links_request():
    request = Message(src=1, dst=2, kind="read", payload={"obj": "x"})
    response = request.reply("read-reply", {"value": 7})
    assert response.src == 2 and response.dst == 1
    assert response.reply_to == request.msg_id
    assert response.payload["value"] == 7


def test_unknown_destination_rejected():
    sim, _, net, _ = build()
    with pytest.raises(KeyError):
        net.send(Message(src=1, dst=42, kind="ping"))


def test_parameter_validation():
    sim = Simulator()
    graph = CommGraph([1, 2])
    rng = random.Random(1)
    with pytest.raises(ValueError):
        Network(sim, graph, FixedLatency(1.0), rng, loss_prob=1.5)
    with pytest.raises(ValueError):
        Network(sim, graph, FixedLatency(1.0), rng, slow_factor=0.5)


def test_wiretap_sees_all_sends():
    sim, graph, net, _ = build()
    graph.cut_link(1, 2)
    tapped = []
    net.tap = tapped.append
    net.send(Message(src=1, dst=2, kind="lost"))
    net.send(Message(src=1, dst=3, kind="kept"))
    sim.run()
    assert [m.kind for m in tapped] == ["lost", "kept"]
