"""Unit tests for per-destination transport batching."""

import random

from repro.net import CommGraph, FixedLatency, Message, Network
from repro.sim import Simulator


class CountingLatency(FixedLatency):
    """FixedLatency that counts delay() draws (one per envelope)."""

    def __init__(self, delay):
        super().__init__(delay)
        self.draws = 0

    def delay(self, src, dst, rng):
        self.draws += 1
        return super().delay(src, dst, rng)


def build(window, latency=None, n=3, **kwargs):
    sim = Simulator()
    graph = CommGraph(range(1, n + 1))
    net = Network(sim, graph, latency or FixedLatency(1.0),
                  random.Random(1), batch_window=window, **kwargs)
    arrivals = {p: [] for p in graph.nodes}
    for p in graph.nodes:
        net.register(
            p, lambda m, box=arrivals[p]: box.append((m.kind, sim.now)))
    return sim, graph, net, arrivals


def test_same_destination_messages_share_one_envelope():
    latency = CountingLatency(1.0)
    sim, _, net, arrivals = build(window=0.5, latency=latency)
    net.send(Message(src=1, dst=2, kind="a"))
    net.send(Message(src=1, dst=2, kind="b"))
    sim.run()
    # both delivered, in order, at open + max(delay, window) = 1.0
    assert arrivals[2] == [("a", 1.0), ("b", 1.0)]
    assert net.stats.sent == 2
    assert net.stats.envelopes == 1
    assert net.stats.enveloped_messages == 2
    assert net.stats.batch_occupancy == 2.0
    assert latency.draws == 1


def test_different_destinations_do_not_coalesce():
    sim, _, net, _ = build(window=0.5)
    net.send(Message(src=1, dst=2, kind="a"))
    net.send(Message(src=1, dst=3, kind="b"))
    net.send(Message(src=2, dst=3, kind="c"))  # other src, same dst
    sim.run()
    assert net.stats.envelopes == 3
    assert net.stats.delivered == 3


def test_zero_window_keeps_envelopes_equal_to_sent():
    sim, _, net, arrivals = build(window=0.0)
    for _ in range(5):
        net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert net.stats.envelopes == net.stats.sent == 5
    assert net.stats.batch_occupancy == 1.0
    assert all(t == 1.0 for _, t in arrivals[2])


def test_opener_unchanged_and_followers_arrive_no_later():
    sim, _, net, arrivals = build(window=0.5)
    net.send(Message(src=1, dst=2, kind="opener"))
    sim.timeout(0.4).add_callback(
        lambda e: net.send(Message(src=1, dst=2, kind="follower")))
    sim.run()
    # the opener arrives exactly when it would have alone; the follower
    # (alone: 1.4) rides the envelope and arrives at 1.0 — still within
    # the delta bound, so protocol timers remain sound
    assert dict(arrivals[2]) == {"opener": 1.0, "follower": 1.0}
    assert net.stats.envelopes == 1


def test_window_above_delay_dominates_arrival():
    sim, _, net, arrivals = build(window=2.0)
    net.send(Message(src=1, dst=2, kind="ping"))
    sim.run()
    assert arrivals[2] == [("ping", 2.0)]  # open + max(delay, window)


def test_send_after_flush_opens_a_new_envelope():
    sim, _, net, arrivals = build(window=0.5)
    net.send(Message(src=1, dst=2, kind="first"))
    sim.timeout(0.6).add_callback(
        lambda e: net.send(Message(src=1, dst=2, kind="second")))
    sim.run()
    assert net.stats.envelopes == 2
    assert dict(arrivals[2]) == {"first": 1.0, "second": 1.6}


def test_loss_draw_is_per_envelope_not_per_message():
    sim, _, net, arrivals = build(window=0.5, loss_prob=0.999)
    net.send(Message(src=1, dst=2, kind="a"))
    net.send(Message(src=1, dst=2, kind="b"))
    sim.run()
    # the whole envelope is lost on one draw: both riders drop together
    assert arrivals[2] == []
    assert net.stats.dropped_lost == 2
    assert net.stats.envelopes == 1


def test_msg_id_streams_are_per_network():
    _, _, net_a, _ = build(window=0.0)
    _, _, net_b, _ = build(window=0.0)
    assert [net_a.next_msg_id() for _ in range(3)] == [1, 2, 3]
    # a second network starts its own stream — ids never leak across
    # clusters built back-to-back in one process
    assert net_b.next_msg_id() == 1
