"""Unit tests for latency models."""

import random

import pytest

from repro.net import (
    DistanceLatency,
    FixedLatency,
    UniformLatency,
    ring_distances,
)


def test_fixed_latency_is_constant():
    model = FixedLatency(2.0)
    rng = random.Random(1)
    assert model.delay(1, 2, rng) == 2.0
    assert model.bound == 2.0
    assert model.distance(1, 2) == 2.0
    assert model.distance(3, 3) == 0.0


def test_fixed_latency_rejects_nonpositive():
    with pytest.raises(ValueError):
        FixedLatency(0.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.5, 1.5)
    rng = random.Random(1)
    samples = [model.delay(1, 2, rng) for _ in range(200)]
    assert all(0.5 <= s <= 1.5 for s in samples)
    assert model.bound == 1.5
    assert model.distance(1, 2) == pytest.approx(1.0)


def test_uniform_latency_validates_range():
    with pytest.raises(ValueError):
        UniformLatency(2.0, 1.0)
    with pytest.raises(ValueError):
        UniformLatency(0.0, 1.0)


def test_distance_latency_uses_table_symmetrically():
    model = DistanceLatency({(1, 2): 0.3, (2, 3): 0.9}, default=1.0)
    rng = random.Random(1)
    assert model.delay(1, 2, rng) == 0.3
    assert model.delay(2, 1, rng) == 0.3
    assert model.delay(2, 3, rng) == 0.9
    assert model.delay(1, 3, rng) == 1.0  # default
    assert model.distance(1, 2) == 0.3


def test_distance_latency_bound_covers_jitter():
    model = DistanceLatency({(1, 2): 2.0}, default=1.0, jitter=0.5)
    assert model.bound == pytest.approx(3.0)
    rng = random.Random(1)
    samples = [model.delay(1, 2, rng) for _ in range(100)]
    assert all(2.0 <= s <= 3.0 for s in samples)


def test_distance_latency_local_access_is_cheap():
    model = DistanceLatency({}, default=1.0, local=0.01)
    rng = random.Random(1)
    assert model.delay(5, 5, rng) == 0.01
    assert model.distance(5, 5) == 0.0


def test_distance_latency_validation():
    with pytest.raises(ValueError):
        DistanceLatency({(1, 2): 0.0})
    with pytest.raises(ValueError):
        DistanceLatency({}, default=0.0)
    with pytest.raises(ValueError):
        DistanceLatency({}, jitter=-0.1)


def test_ring_distances_nearest_is_adjacent():
    table = ring_distances([1, 2, 3, 4, 5], near=0.2, far_step=0.4)
    model = DistanceLatency(table)
    # Node 1's nearest others are its ring neighbours 2 and 5.
    distances = {q: model.distance(1, q) for q in (2, 3, 4, 5)}
    assert distances[2] == distances[5] == 0.2
    assert distances[3] == distances[4] == pytest.approx(0.6)
