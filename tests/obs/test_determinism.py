"""Satellite: two same-seed runs serialize to byte-identical traces.

The replay-debugging guarantee: everything a trace records is derived
from simulated time and seeded randomness, never from process state
(object ids, global counters, wall clocks).  Serialization is canonical
(sorted keys, compact separators), so equality is literal bytes.
"""

from repro import Cluster
from repro.obs.export import dumps_jsonl


def _traced_run(seed: int) -> str:
    cluster = Cluster(processors=4, seed=seed, trace=True, loss_prob=0.05)
    for index, obj in enumerate(["x", "y"]):
        cluster.place(obj, holders=[1, 2, 3, 4], initial=index)
    cluster.start()
    cluster.injector.partition_at(10.0, [{1, 2}, {3, 4}])
    cluster.injector.heal_all_at(60.0)
    cluster.write_once(1, "x", 1)
    cluster.read_once(3, "y")
    cluster.write_once(2, "y", 5)
    cluster.run(until=120.0)
    return dumps_jsonl(cluster.tracer.events)


def test_same_seed_traces_are_byte_identical():
    first = _traced_run(seed=7)
    second = _traced_run(seed=7)
    assert first, "traced run must record events"
    assert first == second


def test_different_seeds_diverge():
    # Sanity check that the guard above is not vacuous: the trace
    # actually depends on the seeded randomness.
    assert _traced_run(seed=7) != _traced_run(seed=8)


def _msg_id_stream(seed: int) -> list:
    cluster = Cluster(processors=3, seed=seed)
    ids = []
    cluster.network.tap = lambda message: ids.append(message.msg_id)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.write_once(1, "x", 1)
    cluster.read_once(2, "x")
    cluster.run(until=40.0)
    return ids


def test_msg_id_streams_repeat_across_back_to_back_runs():
    # Message ids are allocated per Network, so a second same-seed
    # cluster built later in the same process sees the identical id
    # stream — a process-global counter would keep climbing and break
    # replay debugging for anything that records ids.
    first = _msg_id_stream(seed=3)
    second = _msg_id_stream(seed=3)
    assert first, "the run must send messages"
    assert first == second
    assert first[0] == 1
