"""Unit tests for the tracer, event model, and JSONL export."""

import io
import json

from repro.core.ids import VpId
from repro.obs.events import TraceEvent, jsonable
from repro.obs.export import dumps_jsonl, event_line, read_jsonl, write_jsonl
from repro.obs.trace import Tracer
from repro.sim import Simulator


def test_jsonable_normalizes_sets_and_vpids():
    assert jsonable({3, 1, 2}) == [1, 2, 3]
    assert jsonable(VpId(2, 1)) == "vp(2,1)"
    assert jsonable((1, "a")) == [1, "a"]
    assert jsonable({"b": 1, "a": 2}) == {"a": 2, "b": 1}
    assert jsonable(None) is None


def test_event_roundtrip():
    event = TraceEvent(1.5, "vp.join", 2, {"vpid": "vp(2,1)", "view": [1, 2]})
    record = json.loads(event_line(event))
    back = TraceEvent.from_dict(record)
    assert back == event


def test_emit_records_at_sim_now():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("vp.join", pid=1, vpid="vp(1,1)")
    assert len(tracer) == 1
    event = tracer.events[0]
    assert event.time == sim.now
    assert event.etype == "vp.join"
    assert event.pid == 1


def test_kinds_prefix_filter():
    sim = Simulator()
    tracer = Tracer(sim, kinds={"vp", "txn"})
    tracer.emit("vp.join", pid=1)
    tracer.emit("msg.send", pid=1)
    tracer.emit("txn.commit", pid=1)
    assert tracer.counts() == {"txn.commit": 1, "vp.join": 1}


def test_by_type_and_clear():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a.b", pid=1)
    tracer.emit("a.c", pid=1)
    assert [e.etype for e in tracer.by_type("a.b")] == ["a.b"]
    tracer.clear()
    assert len(tracer) == 0


def test_jsonl_roundtrip_via_file(tmp_path):
    events = [
        TraceEvent(0.0, "vp.depart", 1, {"vpid": "vp(0,1)"}),
        TraceEvent(1.0, "msg.send", 1, {"dst": 2, "kind": "probe"}),
    ]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(events, path) == 2
    assert read_jsonl(path) == events


def test_jsonl_roundtrip_via_stream():
    events = [TraceEvent(0.5, "txn.begin", 3, {"txn": "(3, 1)"})]
    text = dumps_jsonl(events)
    assert text.endswith("\n")
    assert read_jsonl(io.StringIO(text)) == events


def test_attach_kernel_records_sim_steps():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.attach_kernel()
    sim.timeout(1.0, name="tick")
    sim.run(until=2.0)
    steps = tracer.by_type("sim.step")
    assert steps and steps[0].fields["event"] == "tick"


def test_cluster_trace_wiring():
    from repro import Cluster

    cluster = Cluster(processors=3, seed=1, trace=True)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.write_once(1, "x", 7)
    cluster.run(until=30.0)
    counts = cluster.tracer.counts()
    assert counts.get("msg.send", 0) > 0
    assert counts.get("msg.recv", 0) > 0
    assert counts.get("txn.commit", 0) >= 1
    assert counts.get("lock.grant", 0) >= 1


def test_cluster_write_trace(tmp_path):
    from repro import Cluster

    cluster = Cluster(processors=2, seed=1, trace=True)
    cluster.place("x", holders=[1, 2], initial=0)
    cluster.start()
    cluster.run(until=10.0)
    path = tmp_path / "t.jsonl"
    count = cluster.write_trace(path)
    assert count == len(cluster.tracer.events)
    assert len(read_jsonl(path)) == count


def test_untraced_cluster_has_no_tracer():
    from repro import Cluster

    cluster = Cluster(processors=2, seed=1)
    assert cluster.tracer is None
    assert cluster.network.tracer is None
