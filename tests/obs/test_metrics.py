"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LogBucketHistogram,
    MetricsRegistry,
    NullRegistry,
)


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_sets():
    gauge = Gauge("g")
    gauge.set(3.5)
    assert gauge.value == 3.5
    gauge.set(-1.0)
    assert gauge.value == -1.0


def test_histogram_summary():
    hist = Histogram("h")
    for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["min"] == 1.0
    assert summary["max"] == 5.0
    assert summary["mean"] == 3.0
    assert summary["p50"] == 3.0


def test_histogram_percentile_nearest_rank():
    hist = Histogram("h")
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.percentile(50) == 50.0
    assert hist.percentile(90) == 90.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(100) == 100.0


def test_histogram_empty_summary():
    assert Histogram("h").summary() == {"count": 0}


def test_log_histogram_bucket_boundaries():
    # an exact power of the growth factor lands on its own bucket's
    # floor, not the one below, despite float log rounding
    g = LogBucketHistogram.GROWTH
    for index in (-40, -1, 0, 1, 17, 160):
        assert LogBucketHistogram.bucket_index(g ** index) == index
        # just below the boundary falls in the previous bucket
        assert LogBucketHistogram.bucket_index(g ** index * 0.999) == index - 1
    assert LogBucketHistogram.bucket_index(1.0) == 0


def test_log_histogram_percentile_accuracy():
    hist = LogBucketHistogram("h")
    for value in range(1, 1001):
        hist.observe(float(value))
    # representatives stay within one bucket width of the exact answer
    for q, exact in [(50, 500.0), (90, 900.0), (99, 990.0)]:
        assert abs(hist.percentile(q) - exact) / exact < 0.05
    assert hist.percentile(100) == 1000.0  # max is exact
    assert hist.count == 1000
    assert hist.mean == pytest.approx(500.5)


def test_log_histogram_empty_and_one_sample():
    hist = LogBucketHistogram("h")
    assert hist.summary() == {"count": 0}
    assert hist.percentile(50) == 0.0
    hist.observe(7.25)
    summary = hist.summary()
    assert summary["count"] == 1
    assert summary["min"] == 7.25
    assert summary["max"] == 7.25
    # a single sample is every percentile, exactly
    assert summary["p50"] == 7.25
    assert summary["p99"] == 7.25


def test_log_histogram_zero_and_negative():
    hist = LogBucketHistogram("h")
    hist.observe(0.0)
    hist.observe(0.0)
    hist.observe(4.0)
    assert hist.percentile(50) == 0.0
    assert hist.summary()["min"] == 0.0
    with pytest.raises(ValueError):
        hist.observe(-1.0)


def test_log_histogram_merge():
    left = LogBucketHistogram("h")
    right = LogBucketHistogram("h")
    combined = LogBucketHistogram("h")
    for value in [1.0, 8.0, 64.0]:
        left.observe(value)
        combined.observe(value)
    for value in [0.0, 2.0, 512.0]:
        right.observe(value)
        combined.observe(value)
    left.merge(right)
    assert left.count == combined.count
    assert left.summary() == combined.summary()
    with pytest.raises(TypeError):
        left.merge(Histogram("h"))  # type: ignore[arg-type]


def test_log_histogram_merge_empty():
    left = LogBucketHistogram("h")
    left.observe(3.0)
    left.merge(LogBucketHistogram("h"))
    assert left.summary()["count"] == 1
    empty = LogBucketHistogram("h")
    empty.merge(left)
    assert empty.summary()["max"] == 3.0


def test_registry_log_histogram_interned_and_kind_checked():
    registry = MetricsRegistry()
    hist = registry.log_histogram("lat")
    assert registry.log_histogram("lat") is hist
    assert isinstance(hist, LogBucketHistogram)
    registry.histogram("exact")
    with pytest.raises(ValueError):
        registry.log_histogram("exact")
    hist.observe(2.0)
    assert registry.snapshot()["histograms"]["lat"]["count"] == 1


def test_null_registry_log_histogram_is_inert():
    registry = NullRegistry()
    registry.log_histogram("x").observe(5.0)
    registry.log_histogram("x").observe_many([1.0, 2.0])
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_registry_interns_instruments():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_rejects_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_snapshot_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(1.0)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    assert snapshot["gauges"] == {"g": 7}
    assert snapshot["histograms"]["h"]["count"] == 1
    json.dumps(snapshot)  # must be serializable as-is


def test_null_registry_is_inert():
    registry = NullRegistry()
    registry.counter("a").inc(5)
    registry.gauge("b").set(2.0)
    registry.histogram("c").observe(1.0)
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_null_registry_shares_instruments():
    assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")
