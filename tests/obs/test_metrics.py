"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_sets():
    gauge = Gauge("g")
    gauge.set(3.5)
    assert gauge.value == 3.5
    gauge.set(-1.0)
    assert gauge.value == -1.0


def test_histogram_summary():
    hist = Histogram("h")
    for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["min"] == 1.0
    assert summary["max"] == 5.0
    assert summary["mean"] == 3.0
    assert summary["p50"] == 3.0


def test_histogram_percentile_nearest_rank():
    hist = Histogram("h")
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.percentile(50) == 50.0
    assert hist.percentile(90) == 90.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(100) == 100.0


def test_histogram_empty_summary():
    assert Histogram("h").summary() == {"count": 0}


def test_registry_interns_instruments():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_rejects_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_snapshot_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(1.0)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    assert snapshot["gauges"] == {"g": 7}
    assert snapshot["histograms"]["h"]["count"] == 1
    json.dumps(snapshot)  # must be serializable as-is


def test_null_registry_is_inert():
    registry = NullRegistry()
    registry.counter("a").inc(5)
    registry.gauge("b").set(2.0)
    registry.histogram("c").observe(1.0)
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_null_registry_shares_instruments():
    assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")
