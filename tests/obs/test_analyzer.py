"""Unit tests for the trace analyzer, on synthetic and real traces."""

from repro.obs.analyze import TraceAnalyzer, vpid_key
from repro.obs.events import TraceEvent


def E(time, etype, pid=None, **fields):
    return TraceEvent(time, etype, pid, fields)


def test_vpid_key_orders_like_the_protocol():
    assert vpid_key("vp(1,2)") == (1, 2)
    assert vpid_key("vp(2,1)") > vpid_key("vp(1,5)")
    assert vpid_key("garbage") > vpid_key("vp(999,999)")


def test_view_timeline_reconstruction():
    events = [
        E(1.0, "vp.invite", 1, vpid="vp(2,1)", invited=[2, 3]),
        E(1.5, "vp.accept", 2, vpid="vp(2,1)", initiator=1),
        E(2.0, "vp.accept-recv", 1, vpid="vp(2,1)", acceptor=2),
        E(3.0, "vp.commit", 1, vpid="vp(2,1)", view=[1, 2]),
        E(3.0, "vp.join", 1, vpid="vp(2,1)", view=[1, 2]),
        E(4.0, "vp.join", 2, vpid="vp(2,1)", view=[1, 2]),
        E(5.0, "recover.object", 2, vpid="vp(2,1)", obj="x", units=3),
    ]
    views = TraceAnalyzer(events).view_timelines()
    record = views["vp(2,1)"]
    assert record.initiator == 1
    assert record.invited_at == 1.0
    assert record.accepts == [(1.5, 2)]
    assert record.committed_at == 3.0
    assert record.view == [1, 2]
    assert record.joins == {1: 3.0, 2: 4.0}
    assert record.last_join == 4.0
    assert record.recovery_done == 5.0
    assert not record.abandoned


def test_critical_path_segments():
    events = [
        E(1.0, "vp.invite", 1, vpid="vp(2,1)"),
        E(1.5, "vp.accept", 2, vpid="vp(2,1)"),
        E(3.0, "vp.commit", 1, vpid="vp(2,1)", view=[1, 2]),
        E(4.0, "vp.join", 2, vpid="vp(2,1)", view=[1, 2]),
        E(5.5, "recover.object", 2, vpid="vp(2,1)", obj="x"),
    ]
    path = TraceAnalyzer(events).critical_path("vp(2,1)")
    assert [segment[0] for segment in path] == [
        "invite->last-accept", "accepts->commit", "commit->last-join",
        "join->recovery-done",
    ]
    assert path[-1] == ("join->recovery-done", 4.0, 5.5)


def test_abandoned_view():
    events = [
        E(1.0, "vp.invite", 1, vpid="vp(2,1)"),
        E(3.0, "vp.abandon", 1, vpid="vp(2,1)", superseded_by="vp(2,2)"),
    ]
    views = TraceAnalyzer(events).view_timelines()
    assert views["vp(2,1)"].abandoned
    assert not views["vp(2,1)"].formed


def test_message_breakdown():
    events = [
        E(1.0, "msg.send", 1, dst=2, kind="probe", seq=1),
        E(2.0, "msg.recv", 2, src=1, kind="probe", seq=1, latency=1.0),
        E(3.0, "msg.send", 1, dst=3, kind="probe", seq=2),
        E(3.0, "msg.drop", 3, src=1, kind="probe", seq=2, reason="no-edge"),
        E(4.0, "msg.send", 2, dst=1, kind="read", seq=3),
    ]
    table = TraceAnalyzer(events).message_breakdown()
    assert table["probe"] == {"sent": 2, "delivered": 1, "dropped": 1}
    assert table["read"] == {"sent": 1, "delivered": 0, "dropped": 0}


def test_lock_wait_distribution_skips_drops():
    events = [
        E(1.0, "lock.wait", 1, obj="x", txn="(1, 1)", mode="X"),
        E(4.0, "lock.grant", 1, obj="x", txn="(1, 1)", mode="X"),
        E(2.0, "lock.wait", 2, obj="y", txn="(2, 1)", mode="S"),
        E(9.0, "lock.drop", 2, obj="y", txn="(2, 1)", mode="S"),
    ]
    waits = TraceAnalyzer(events).lock_waits()
    assert waits.count == 1
    assert waits.percentile(50) == 3.0


def test_txn_outcomes():
    events = [
        E(1.0, "txn.begin", 1, txn="(1, 1)"),
        E(5.0, "txn.commit", 1, txn="(1, 1)"),
        E(2.0, "txn.begin", 2, txn="(2, 1)"),
        E(6.0, "txn.abort", 2, txn="(2, 1)", reason="read 'x': timeout"),
    ]
    outcome = TraceAnalyzer(events).txn_outcomes()
    assert outcome["committed"] == 1
    assert outcome["aborted"] == 1
    assert outcome["abort_reasons"] == {"read 'x'": 1}
    assert outcome["latency"]["count"] == 1
    assert outcome["latency"]["mean"] == 4.0


def test_analyzer_on_real_example2_trace():
    """Acceptance criterion: the analyzer reconstructs a per-view
    timeline from an actual Example 2 run."""
    from repro.workload.scenarios import run_example2_vp

    outcome = run_example2_vp(seed=0, trace=True)
    analyzer = TraceAnalyzer(outcome.cluster.tracer.events)
    views = analyzer.view_timelines()
    formed = [v for v in views.values() if v.formed and v.committed_at]
    assert formed, "some partition must fully form in Example 2"
    for record in formed:
        path = analyzer.critical_path(record.vpid)
        assert path, f"{record.vpid} formed but has no critical path"
    counts = analyzer.counts()
    assert counts.get("vp.invite", 0) > 0
    assert counts.get("vp.commit", 0) > 0
    assert counts.get("msg.send", 0) > 0
    assert counts.get("txn.commit", 0) + counts.get("txn.abort", 0) > 0
    report = analyzer.render()
    assert "view formations" in report
    summary = analyzer.summary()
    assert summary["events"] == len(outcome.cluster.tracer.events)
