"""Unit tests for the public Cluster builder API."""

import pytest

from repro import Cluster, ProtocolConfig
from repro.net import UniformLatency


def test_processor_count_constructor():
    cluster = Cluster(processors=3)
    assert cluster.pids == [1, 2, 3]


def test_explicit_pid_list():
    cluster = Cluster(processors=[7, 3, 9])
    assert cluster.pids == [3, 7, 9]


def test_empty_processor_set_rejected():
    with pytest.raises(ValueError):
        Cluster(processors=[])


def test_delta_must_cover_latency_bound():
    with pytest.raises(ValueError):
        Cluster(processors=3, latency=UniformLatency(0.5, 2.0),
                config=ProtocolConfig(delta=1.0))


def test_config_defaults_derive_from_latency():
    cluster = Cluster(processors=3, latency=UniformLatency(0.5, 2.0))
    assert cluster.config.delta == 2.0


def test_place_creates_copies_with_initial_value():
    cluster = Cluster(processors=3)
    cluster.place("x", holders=[1, 3], initial=42)
    assert cluster.processor(1).store.peek("x")[0] == 42
    assert cluster.processor(3).store.peek("x")[0] == 42
    assert not cluster.processor(2).store.holds("x")


def test_double_start_rejected():
    cluster = Cluster(processors=3)
    cluster.start()
    with pytest.raises(RuntimeError):
        cluster.start()


def test_read_write_once_helpers():
    cluster = Cluster(processors=3, seed=4)
    cluster.place("x", holders=[1, 2, 3], initial="before")
    cluster.start()
    write = cluster.write_once(1, "x", "after")
    cluster.sim.run(until=write)
    read = cluster.read_once(2, "x")
    cluster.sim.run(until=read)
    assert write.value == (True, "after")
    assert read.value == (True, "after")


def test_total_metrics_sums_processors():
    cluster = Cluster(processors=3, seed=4)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    for pid in (1, 2, 3):
        done = cluster.read_once(pid, "x")
        cluster.sim.run(until=done)
    totals = cluster.total_metrics()
    assert totals.logical_reads == 3
    assert totals.local_reads == 3


def test_submit_returns_process_with_outcome():
    cluster = Cluster(processors=3, seed=4)
    cluster.place("x", holders=[1, 2, 3], initial=5)
    cluster.start()

    def body(txn):
        value = yield from txn.read("x")
        return value * 2

    outcome = cluster.submit(1, body)
    cluster.sim.run(until=outcome)
    assert outcome.value == (True, 10)


def test_checkers_accessible_from_cluster():
    cluster = Cluster(processors=3, seed=4)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start()
    done = cluster.write_once(1, "x", 1)
    cluster.sim.run(until=done)
    assert cluster.check_one_copy_serializable() is True
    assert cluster.check_serializable() is True


def test_repr_mentions_protocol():
    cluster = Cluster(processors=3)
    assert "virtual-partitions" in repr(cluster)


def test_bootstrap_false_leaves_singletons():
    cluster = Cluster(processors=3)
    cluster.place("x", holders=[1, 2, 3], initial=0)
    cluster.start(bootstrap=False)
    views = {frozenset(cluster.protocol(p).view) for p in cluster.pids}
    assert views == {frozenset({1}), frozenset({2}), frozenset({3})}
