"""Integration tests for ClientSession on a live simulated cluster."""

import pytest

from repro import Cluster
from repro.client.session import SessionSpec


def make_cluster(**kwargs):
    cluster = Cluster(processors=3, seed=7, audit=True, **kwargs)
    for obj in ("x", "y", "z"):
        cluster.place(obj, holders=[1, 2, 3], initial=0)
    cluster.start()
    cluster.run(until=5.0)
    return cluster


def run_program(cluster, session, program, tag="t"):
    proc = cluster.sim.process(
        session.run_program(program, tag=tag, retries=3))
    cluster.sim.run(until=proc)
    return proc.value


def settle(cluster, outcome):
    cluster.sim.run(until=outcome)
    return outcome.value


# -- spec validation ---------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        SessionSpec(cache_capacity=-1)
    with pytest.raises(ValueError):
        SessionSpec(cache_policy="write-around")
    with pytest.raises(ValueError):
        SessionSpec(lease_duration=-1.0)
    with pytest.raises(ValueError):
        SessionSpec(cache_policy="write-back")  # needs a cache
    assert not SessionSpec().enabled
    assert SessionSpec(cache_capacity=1).enabled
    assert SessionSpec(lease_duration=1.0).enabled


def test_leases_need_a_view_state_protocol():
    from repro.protocols import protocol_factory

    cluster = make_cluster(protocol=protocol_factory("rowa"))
    with pytest.raises(ValueError, match="no view state"):
        cluster.session(1, lease_duration=5.0)
    # cache-only sessions are fine on any protocol
    cluster.session(1, cache_capacity=4)


def test_sessions_on_one_processor_must_agree_on_lease_duration():
    cluster = make_cluster()
    cluster.session(1, lease_duration=5.0)
    with pytest.raises(ValueError, match="must agree"):
        cluster.session(1, lease_duration=2.5)
    # equal durations share the processor's table
    a = cluster.session(1, lease_duration=5.0)
    b = cluster.session(1, lease_duration=5.0)
    assert a.lease_table is b.lease_table


def test_cluster_session_rejects_spec_plus_knobs():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.session(1, SessionSpec(cache_capacity=2), cache_capacity=4)


# -- cache behaviour through real programs -----------------------------------


def test_repeat_read_served_from_cache_with_leases_off():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=4)
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 0
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 0
    assert session.stats.cache_reads == 1
    assert session.stats.remote_reads == 1
    assert session.stats.local_programs == 1


def test_write_through_fills_the_cache_with_the_committed_value():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=4)
    committed, _ = run_program(cluster, session, [("w", "x")], tag="a")
    assert committed
    assert session.stats.remote_writes == 1
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == "a/w0"
    assert session.stats.cache_reads == 1


def test_write_back_is_local_and_read_your_writes():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=4,
                              cache_policy="write-back")
    committed, _ = run_program(cluster, session, [("w", "x")], tag="a")
    assert committed
    assert session.stats.local_programs == 1, "no protocol txn needed"
    assert session.stats.remote_writes == 0
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == "a/w0", "read-your-writes"
    # the store has not seen the write yet
    assert settle(cluster, cluster.read_once(2, "x")) == (True, 0)


def test_drain_flushes_pending_write_back_values():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=4,
                              cache_policy="write-back")
    run_program(cluster, session, [("w", "x")], tag="a")
    proc = cluster.sim.process(session.drain(retries=3))
    cluster.sim.run(until=proc)
    assert proc.value is True
    assert settle(cluster, cluster.read_once(2, "x")) == (True, "a/w0")
    assert not session.cache.dirty_items()


def test_dirty_eviction_rides_the_next_transaction():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=1,
                              cache_policy="write-back")
    run_program(cluster, session, [("w", "x")], tag="a")
    # writing y evicts dirty x, which must flush in y's transaction
    committed, _ = run_program(cluster, session, [("w", "y")], tag="b")
    assert committed
    assert session.stats.flush_writes == 1
    assert settle(cluster, cluster.read_once(2, "x")) == (True, "a/w0")


# -- lease behaviour ---------------------------------------------------------


def test_lease_serves_repeat_read_then_expires():
    cluster = make_cluster()
    session = cluster.session(1, lease_duration=5.0)
    run_program(cluster, session, [("r", "x")])
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 0
    assert session.stats.lease_reads == 1
    assert session.stats.staleness and \
        session.stats.staleness[0] <= session.staleness_bound
    cluster.run(until=cluster.sim.now + 6.0)  # past L
    run_program(cluster, session, [("r", "x")])
    assert session.stats.remote_reads == 2
    assert session.lease_table.stats.expired == 1
    assert cluster.auditor.violations == []


def test_local_write_commit_invalidates_the_lease():
    cluster = make_cluster()
    session = cluster.session(1, lease_duration=10.0)
    run_program(cluster, session, [("r", "x")])
    assert len(session.lease_table) == 1
    assert settle(cluster, cluster.write_once(1, "x", 99))[0]
    assert len(session.lease_table) == 0
    assert session.lease_table.stats.invalidated == 1
    committed, value = run_program(cluster, session, [("r", "x")])
    assert committed and value == 99, "stale lease value must not serve"
    assert cluster.auditor.violations == []


def test_membership_event_revokes_the_lease():
    cluster = make_cluster()
    session = cluster.session(1, lease_duration=10.0)
    run_program(cluster, session, [("r", "x")])
    assert len(session.lease_table) == 1
    epoch_before = cluster.protocol(1).state.epoch
    cluster.injector.crash_at(cluster.sim.now + 0.5, 3)
    cluster.run(until=cluster.sim.now + 25.0)  # past probe detection
    assert cluster.protocol(1).state.epoch > epoch_before
    run_program(cluster, session, [("r", "x")])
    assert session.lease_table.stats.revoked == 1
    assert session.stats.remote_reads == 2
    assert cluster.auditor.violations == []


def test_fully_local_program_commits_with_zero_latency():
    cluster = make_cluster()
    session = cluster.session(1, cache_capacity=4,
                              cache_policy="write-back", lease_duration=5.0)
    run_program(cluster, session, [("r", "x")])
    before = cluster.sim.now
    committed, _ = run_program(cluster, session, [("r", "x"), ("w", "y")],
                               tag="c")
    assert committed
    assert cluster.sim.now == before, "local programs advance no sim time"
    assert session.stats.program_latencies[-1] == 0.0
    assert cluster.auditor.violations == []
