"""Unit tests for the per-client LRU session cache."""

import pytest

from repro.client.cache import (
    WRITE_BACK,
    WRITE_THROUGH,
    SessionCache,
)


def test_validation():
    with pytest.raises(ValueError):
        SessionCache(0)
    with pytest.raises(ValueError):
        SessionCache(4, policy="write-around")


def test_lookup_hits_misses_and_hit_rate():
    cache = SessionCache(2)
    assert cache.lookup("x") is None
    cache.put("x", 1)
    assert cache.lookup("x").value == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_peek_does_not_touch_lru_or_counters():
    cache = SessionCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.peek("a")  # no LRU touch: "a" stays oldest
    cache.put("c", 3)
    assert "a" not in cache and "b" in cache and "c" in cache
    assert cache.stats.lookups == 0


def test_lru_eviction_order_follows_lookups():
    cache = SessionCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.lookup("a")  # now "b" is oldest
    cache.put("c", 3)
    assert "b" not in cache and "a" in cache


def test_clean_evictions_return_nothing():
    cache = SessionCache(1)
    cache.put("a", 1)
    assert cache.put("b", 2) == []
    assert cache.stats.evictions == 1
    assert cache.stats.dirty_evictions == 0


def test_dirty_eviction_hands_back_the_pending_write():
    cache = SessionCache(1, policy=WRITE_BACK)
    cache.put("a", 1, dirty=True)
    flushes = cache.put("b", 2)
    assert flushes == [("a", 1)]
    assert cache.stats.dirty_evictions == 1


def test_clean_fill_does_not_launder_a_dirty_entry():
    cache = SessionCache(2, policy=WRITE_BACK)
    cache.put("a", "pending", dirty=True)
    cache.put("a", "pending")  # e.g. a refresh with the same value
    assert cache.peek("a").dirty
    assert cache.dirty_items() == [("a", "pending")]


def test_dirty_overwrite_supersedes_last_write_wins():
    cache = SessionCache(2, policy=WRITE_BACK)
    cache.put("a", 1, dirty=True)
    cache.put("a", 2, dirty=True)
    assert cache.dirty_items() == [("a", 2)]


def test_invalidate_drops_clean_but_never_dirty():
    cache = SessionCache(2, policy=WRITE_BACK)
    cache.put("clean", 1)
    cache.put("dirty", 2, dirty=True)
    assert cache.invalidate("clean")
    assert not cache.invalidate("dirty"), "a pending write must survive"
    assert not cache.invalidate("absent")
    assert "dirty" in cache and "clean" not in cache
    assert cache.stats.invalidations == 1


def test_mark_flushed_cleans_only_the_exact_value():
    cache = SessionCache(2, policy=WRITE_BACK)
    cache.put("a", 1, dirty=True)
    cache.mark_flushed("a", 999)  # a different (older) flush
    assert cache.peek("a").dirty
    cache.mark_flushed("a", 1)
    assert not cache.peek("a").dirty


def test_policy_constants():
    assert SessionCache(1).policy == WRITE_THROUGH
    assert SessionCache(1, policy=WRITE_BACK).policy == WRITE_BACK
