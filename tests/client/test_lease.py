"""Unit tests for the lease table: grant/serve/expire/revoke."""

from dataclasses import dataclass

import pytest

from repro.client.lease import LeaseTable


@dataclass
class FakeState:
    """Just the two attributes the table reads from ReplicaState."""

    assigned: bool = True
    epoch: int = 0


def make(duration=5.0, pi=10.0, state=None):
    return LeaseTable(state or FakeState(), duration, pi)


def test_duration_must_be_positive_and_within_pi():
    with pytest.raises(ValueError):
        make(duration=0.0)
    with pytest.raises(ValueError):
        make(duration=-1.0)
    with pytest.raises(ValueError):
        make(duration=10.5, pi=10.0)
    make(duration=10.0, pi=10.0)  # L == pi is the legal maximum


def test_grant_then_serve_within_window():
    table = make(duration=5.0)
    lease = table.grant("x", "v", ("T1", 0), now=100.0)
    assert lease.expires_at == 105.0
    served = table.serve("x", now=104.9)
    assert served is lease and served.value == "v"
    assert table.stats.granted == 1 and table.stats.served == 1


def test_serve_past_expiry_drops_the_lease():
    table = make(duration=5.0)
    table.grant("x", "v", ("T1", 0), now=100.0)
    assert table.serve("x", now=105.1) is None
    assert table.stats.expired == 1
    assert len(table) == 0
    # and the drop is permanent — no zombie revival inside the window
    assert table.serve("x", now=104.0) is None


def test_epoch_bump_revokes_conservatively():
    state = FakeState()
    table = make(duration=5.0, state=state)
    table.grant("x", "v", ("T1", 0), now=0.0)
    state.epoch += 1  # any membership event: join, depart, crash
    assert table.serve("x", now=1.0) is None
    assert table.stats.revoked == 1
    # even if the epoch were to come back equal, the lease is gone
    state.epoch -= 1
    assert table.serve("x", now=1.0) is None


def test_unassigned_state_refuses_grants_and_serves():
    state = FakeState(assigned=False)
    table = make(state=state)
    assert table.grant("x", "v", None, now=0.0) is None
    state.assigned = True
    table.grant("x", "v", None, now=0.0)
    state.assigned = False
    assert table.serve("x", now=1.0) is None
    assert table.stats.revoked == 1


def test_fetch_time_defaults_to_grant_time():
    table = make()
    lease = table.grant("x", "v", None, now=7.0)
    assert lease.fetch_time == 7.0
    lease = table.grant("y", "v", None, now=9.0, fetch_time=8.5)
    assert lease.fetch_time == 8.5


def test_invalidate_on_local_write_commit():
    table = make()
    table.grant("x", "v", None, now=0.0)
    assert table.invalidate("x")
    assert not table.invalidate("x")
    assert table.stats.invalidated == 1
    assert table.serve("x", now=0.1) is None


def test_regrant_replaces_the_lease():
    table = make(duration=5.0)
    table.grant("x", "old", None, now=0.0)
    table.grant("x", "new", None, now=3.0)
    served = table.serve("x", now=7.0)  # past the first window
    assert served is not None and served.value == "new"
