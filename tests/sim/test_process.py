"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, ProcessCrashed, Simulator


def test_process_runs_to_completion():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(("start", sim.now))
        yield sim.timeout(1.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(2.0)
        trace.append(("end", sim.now))

    sim.process(worker())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return 99

    proc = sim.process(worker())
    sim.run()
    assert proc.value == 99


def test_process_waits_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "child-result"
    assert sim.now == 5.0


def test_waiting_on_already_finished_process():
    sim = Simulator()

    def quick():
        return 7
        yield  # pragma: no cover

    def late_waiter(target):
        yield sim.timeout(3.0)
        value = yield target
        return value

    child = sim.process(quick())
    sim.run(until=1.0)
    assert child.triggered
    # A finished (processed) process cannot be waited on again; a fresh
    # wrapper event is the documented pattern, so this must crash loudly.
    waiter = sim.process(late_waiter(child))
    with pytest.raises(ProcessCrashed):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((interrupt.cause, sim.now))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt("wake-up")

    sim.process(interrupter())
    sim.run()
    assert caught == [("wake-up", 2.0)]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_kill_stops_process_silently():
    sim = Simulator()
    trace = []

    def victim():
        trace.append("a")
        yield sim.timeout(5.0)
        trace.append("b")  # must never run

    proc = sim.process(victim())
    sim.run(until=1.0)
    proc.kill()
    sim.run()
    assert trace == ["a"]
    assert not proc.is_alive


def test_kill_is_idempotent():
    sim = Simulator()

    def victim():
        yield sim.timeout(5.0)

    proc = sim.process(victim())
    sim.run(until=1.0)
    proc.kill()
    proc.kill()
    assert not proc.is_alive


def test_crashing_process_surfaces_exception():
    sim = Simulator()

    def bomber():
        yield sim.timeout(1.0)
        raise ValueError("bad")

    sim.process(bomber())
    with pytest.raises(ProcessCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, ValueError)


def test_non_strict_mode_records_crashes():
    sim = Simulator()
    sim.strict = False

    def bomber():
        yield sim.timeout(1.0)
        raise ValueError("bad")

    def survivor():
        yield sim.timeout(2.0)
        return "ok"

    proc = sim.process(bomber())
    proc.defuse()
    other = sim.process(survivor())
    sim.run()
    assert other.value == "ok"
    assert len(sim.crashes) == 1


def test_yielding_non_event_crashes_process():
    sim = Simulator()

    def confused():
        yield 42

    sim.process(confused())
    with pytest.raises(ProcessCrashed):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def introspective():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)
        seen.append(sim.active_process)

    proc = sim.process(introspective())
    sim.run()
    assert seen == [proc, proc]
    assert sim.active_process is None
