"""Fast-path semantics: the single-pop dispatch loop, real
``_cancelled`` attributes, and lazy-deletion compaction must be
observably identical to the old peek-then-pop kernel.  (The golden
trace sha in ``tests/properties/test_storage_transparency.py`` pins
the same claim end-to-end.)"""

import pytest

from repro.sim import EmptySchedule, Simulator
from repro.sim.kernel import _COMPACT_MIN
from repro.sim.queues import MessageQueue
from repro.sim.timers import Timer


def test_cancelled_timeouts_are_never_dispatched():
    sim = Simulator()
    fired = []
    doomed = sim.timeout(1.0)
    doomed.add_callback(lambda e: fired.append("doomed"))
    sim.timeout(2.0).add_callback(lambda e: fired.append("kept"))
    doomed.cancel()
    sim.run()
    assert fired == ["kept"]
    assert sim.now == 2.0


def test_dispatched_counter_skips_cancelled_events():
    sim = Simulator()
    survivors = [sim.timeout(float(i)) for i in range(1, 6)]
    for victim in survivors[::2]:
        victim.cancel()
    sim.run()
    # 5 scheduled, 3 cancelled (indices 0, 2, 4): only 2 dispatch
    assert sim.dispatched == 2


def test_step_and_peek_share_the_skip_rule():
    sim = Simulator()
    first = sim.timeout(1.0)
    sim.timeout(2.0)
    first.cancel()
    assert sim.peek() == 2.0
    # peek must not consume: step dispatches the same event
    sim.step()
    assert sim.now == 2.0
    with pytest.raises(EmptySchedule):
        sim.step()


def test_double_cancel_is_idempotent():
    sim = Simulator()
    doomed = sim.timeout(1.0)
    doomed.cancel()
    doomed.cancel()
    assert sim._cancelled_count == 1
    sim.timeout(2.0)
    sim.run()
    assert sim.now == 2.0


def test_anyof_loser_timer_is_cancelled():
    sim = Simulator()
    queue = MessageQueue(sim, name="inbox")
    timer = Timer(sim, name="t")
    outcomes = []

    def receiver():
        timer.set(10.0)
        result = yield sim.any_of([queue.get(), timer.wait()])
        outcomes.append([e.value for e in result.events])

    def sender():
        yield sim.timeout(1.0)
        queue.put("hello")

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert outcomes == [["hello"]]
    # the losing timer's timeout never fires: the clock stops at the
    # message delivery, not at the 10.0 expiry
    assert sim.now == 1.0


def test_anyof_loser_get_unconsumes_item():
    """A get that triggered simultaneously with the winner gives its
    item back to the front of the queue."""
    sim = Simulator()
    queue = MessageQueue(sim, name="inbox")
    received = []

    def racer():
        get = queue.get()
        other = sim.event(name="other")
        other.succeed("winner-first")
        # deliver the item at the same instant, after `other` triggers:
        # the get loses the race and must un-consume
        queue.put("precious")
        result = yield sim.any_of([other, get])
        received.append([e.value for e in result.events])

    sim.process(racer())
    sim.run()
    assert received == [["winner-first"]]
    assert queue.peek_all() == ["precious"]


def test_unhandled_failed_event_raises():
    sim = Simulator()
    sim.event().fail(ValueError("nobody is listening"))
    with pytest.raises(ValueError, match="nobody is listening"):
        sim.run()


def test_non_strict_crash_recording_still_works():
    sim = Simulator()
    sim.strict = False

    def bomber():
        yield sim.timeout(1.0)
        raise ValueError("bad")

    def survivor():
        yield sim.timeout(2.0)
        return "ok"

    sim.process(bomber()).defuse()
    other = sim.process(survivor())
    sim.run()
    assert other.value == "ok"
    assert len(sim.crashes) == 1
    assert isinstance(sim.crashes[0].original, ValueError)


def test_compaction_evicts_cancelled_entries():
    """Once cancelled entries outnumber live ones past the threshold,
    the heap is rebuilt without them — and the surviving events still
    fire in exactly time order."""
    sim = Simulator()
    total = 2 * _COMPACT_MIN + 400
    timeouts = [sim.timeout(float(i + 1)) for i in range(total)]
    victims = timeouts[: 2 * _COMPACT_MIN]  # cancel a clear majority
    for victim in victims:
        victim.cancel()
    # lazy deletion compacted at least once: far fewer entries than
    # were scheduled, and the debt counter was reset below the threshold
    assert len(sim._queue) < total - _COMPACT_MIN
    assert sim._cancelled_count < _COMPACT_MIN

    fired = []
    for keeper in timeouts[2 * _COMPACT_MIN:]:
        keeper.add_callback(lambda e: fired.append(e.delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == 400
    assert sim.dispatched == 400


def test_trace_hook_sees_every_dispatch_in_order():
    sim = Simulator()
    seen = []
    sim.trace_hook = lambda when, event: seen.append(when)
    sim.timeout(2.0)
    doomed = sim.timeout(1.0)
    doomed.cancel()
    sim.timeout(3.0)
    sim.run()
    assert seen == [2.0, 3.0]
    assert sim.dispatched == len(seen)


def test_run_until_horizon_leaves_future_events_intact():
    """The single-pop loop must push a not-yet-due event back rather
    than losing it."""
    sim = Simulator()
    fired = []
    sim.timeout(10.0).add_callback(lambda e: fired.append(10.0))
    sim.run(until=4.0)
    assert sim.now == 4.0 and fired == []
    sim.run()
    assert fired == [10.0]
