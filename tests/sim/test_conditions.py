"""Unit tests for AnyOf/AllOf composite events."""

import pytest

from repro.sim import AnyOf, ConditionValue, Simulator


def test_anyof_fires_on_first():
    sim = Simulator()

    def racer():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        result = yield sim.any_of([fast, slow])
        return (sim.now, fast in result, slow in result, result[fast])

    proc = sim.process(racer())
    sim.run()
    now, has_fast, has_slow, value = proc.value
    assert now == 1.0
    assert has_fast and not has_slow
    assert value == "fast"


def test_anyof_cancels_losers():
    sim = Simulator()

    def racer():
        fast = sim.timeout(1.0)
        slow = sim.timeout(5.0)
        yield sim.any_of([fast, slow])
        return slow

    proc = sim.process(racer())
    sim.run()
    slow = proc.value
    assert not slow.triggered  # cancelled, never fires
    assert sim.now == 1.0  # queue drained early: loser was discarded


def test_allof_waits_for_all():
    sim = Simulator()

    def gather():
        events = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        result = yield sim.all_of(events)
        return (sim.now, [result[e] for e in events])

    proc = sim.process(gather())
    sim.run()
    now, values = proc.value
    assert now == 3.0
    assert values == [3.0, 1.0, 2.0]


def test_empty_condition_fires_immediately():
    sim = Simulator()

    def instant():
        result = yield sim.all_of([])
        return (sim.now, len(result))

    proc = sim.process(instant())
    sim.run()
    assert proc.value == (0.0, 0)


def test_condition_over_triggered_events():
    sim = Simulator()
    done = sim.event()
    done.succeed("x")

    def waiter():
        result = yield sim.any_of([done, sim.timeout(10.0)])
        return result[done]

    proc = sim.process(waiter())
    sim.run()
    assert proc.value == "x"


def test_condition_propagates_failure():
    sim = Simulator()
    bad = sim.event()

    def waiter():
        try:
            yield sim.any_of([bad, sim.timeout(10.0)])
        except ValueError as exc:
            return str(exc)

    proc = sim.process(waiter())
    bad.fail(ValueError("poisoned"))
    sim.run()
    assert proc.value == "poisoned"


def test_mixed_simulators_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    event_b = sim_b.event()
    with pytest.raises(ValueError):
        AnyOf(sim_a, [sim_a.event(), event_b])


def test_condition_value_mapping_interface():
    sim = Simulator()
    a = sim.timeout(1.0, value="va")
    b = sim.timeout(1.0, value="vb")

    def waiter():
        result = yield sim.all_of([a, b])
        return result

    proc = sim.process(waiter())
    sim.run()
    result = proc.value
    assert isinstance(result, ConditionValue)
    assert result[a] == "va" and result[b] == "vb"
    assert set(result) == {a, b}
    with pytest.raises(KeyError):
        _ = result[sim.event()]
