"""Unit tests for the simulation kernel event loop."""

import pytest

from repro.sim import (
    EmptySchedule,
    ProcessCrashed,
    Simulator,
    StopSimulation,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_run_until_horizon_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_past_horizon_rejected():
    sim = Simulator(start=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed(42)
    sim.run()
    assert seen == [42]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError())


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unwaited_failed_event_raises_at_step():
    sim = Simulator()
    sim.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_defused_failure_is_silent():
    sim = Simulator()
    event = sim.event()
    event.defuse()
    event.fail(ValueError("boom"))
    sim.run()  # no raise


def test_run_until_event_returns_value():
    sim = Simulator()

    def producer():
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(producer())
    assert sim.run(until=proc) == "done"
    assert sim.now == 2.0


def test_run_until_event_empty_schedule_raises():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(EmptySchedule):
        sim.run(until=never)


def test_run_until_failed_event_reraises():
    sim = Simulator()

    def bomber():
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    proc = sim.process(bomber())
    with pytest.raises((RuntimeError, ProcessCrashed)):
        sim.run(until=proc)


def test_stop_simulation_from_process():
    sim = Simulator()

    def stopper():
        yield sim.timeout(1.0)
        raise StopSimulation("early")

    sim.process(stopper())
    sim.timeout(100.0)
    assert sim.run() == "early"
    assert sim.now == 1.0


def test_peek_skips_cancelled_timeouts():
    sim = Simulator()
    first = sim.timeout(1.0)
    sim.timeout(2.0)
    first.cancel()
    assert sim.peek() == 2.0


def test_value_access_before_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_empty_run_is_noop():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_clock_advances_to_horizon_when_queue_drains():
    """Regression: successive run(until=t) calls must never leave the
    clock behind the requested horizon, or actions between runs happen
    'in the past'."""
    sim = Simulator()
    sim.timeout(1.0)
    sim.run(until=5.0)
    assert sim.now == 5.0
    sim.run(until=9.0)
    assert sim.now == 9.0
