"""Unit tests for the Notifier condition primitive."""

from repro.sim import Notifier, Simulator


def test_notify_releases_all_current_waiters():
    sim = Simulator()
    notifier = Notifier(sim)
    woken = []

    def waiter(tag):
        yield notifier.wait()
        woken.append((tag, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.timeout(3.0).add_callback(lambda e: notifier.notify_all())
    sim.run()
    assert sorted(woken) == [("a", 3.0), ("b", 3.0)]


def test_new_waiters_need_a_new_notification():
    sim = Simulator()
    notifier = Notifier(sim)
    woken = []

    def late_waiter():
        yield sim.timeout(5.0)
        yield notifier.wait()
        woken.append(sim.now)

    sim.process(late_waiter())
    sim.timeout(3.0).add_callback(lambda e: notifier.notify_all())
    sim.timeout(8.0).add_callback(lambda e: notifier.notify_all())
    sim.run()
    assert woken == [8.0]


def test_wait_for_rechecks_predicate():
    sim = Simulator()
    notifier = Notifier(sim)
    state = {"value": 0}
    woken = []

    def waiter():
        yield from notifier.wait_for(lambda: state["value"] >= 2)
        woken.append(sim.now)

    def bumper():
        for _ in range(3):
            yield sim.timeout(2.0)
            state["value"] += 1
            notifier.notify_all()

    sim.process(waiter())
    sim.process(bumper())
    sim.run()
    assert woken == [4.0]  # after the second bump


def test_wait_for_true_predicate_is_immediate():
    sim = Simulator()
    notifier = Notifier(sim)
    woken = []

    def waiter():
        yield from notifier.wait_for(lambda: True)
        woken.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert woken == [0.0]


def test_waiting_count():
    sim = Simulator()
    notifier = Notifier(sim)

    def waiter():
        yield notifier.wait()

    sim.process(waiter())
    sim.process(waiter())
    sim.run(until=1.0)
    assert notifier.waiting == 2
    notifier.notify_all()
    assert notifier.waiting == 0


def test_notify_with_no_waiters_is_noop():
    sim = Simulator()
    notifier = Notifier(sim)
    notifier.notify_all()
    assert notifier.waiting == 0
