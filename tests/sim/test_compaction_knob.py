"""The ``compact_min`` constructor knob at its degenerate settings, and
the kernel's steady-state allocation profile.

``compact_min=0`` compacts as soon as cancelled entries hold the queue
majority; a huge value never compacts (pure lazy deletion).  Both must
be behavior-transparent: the same workload dispatches the same events
in the same order at any setting — only the internal queue residency
differs.  The tracemalloc test pins the flat core's allocation shape:
steady-state churn allocates O(live events), not O(dispatched events).
"""

import tracemalloc

import pytest

from repro.sim import Simulator
from repro.sim.kernel import _COMPACT_MIN
from repro.sim.queues import MessageQueue
from repro.sim.timers import Timer


def _churn_sim(compact_min, pairs=3, msgs=30):
    """The bench's producer/consumer churn shape, sized for tests:
    every receive races a timer whose loser is cancelled — the
    lazy-deletion traffic compaction exists for."""
    sim = Simulator(compact_min=compact_min)

    def producer(queue):
        for index in range(msgs):
            yield sim.timeout(1.0)
            queue.put(index)

    def consumer(queue, timer):
        received = 0
        while received < msgs:
            timer.set(3.0)
            result = yield sim.any_of([queue.get(), timer.wait()])
            received += sum(1 for event in result.events
                            if not isinstance(event.value, Timer))

    for index in range(pairs):
        queue = MessageQueue(sim, name=f"q{index}")
        sim.process(producer(queue), name=f"prod{index}")
        sim.process(consumer(queue, Timer(sim, name=f"t{index}")),
                    name=f"cons{index}")
    return sim


def test_negative_compact_min_rejected():
    with pytest.raises(ValueError):
        Simulator(compact_min=-1)


def test_compact_min_zero_compacts_eagerly():
    """At the 0 threshold, dead entries can never hold the majority for
    long: cancelling the whole queue collapses it geometrically."""
    sim = Simulator(compact_min=0)
    timeouts = [sim.timeout(10.0 + index) for index in range(100)]
    for timeout in timeouts:
        timeout.cancel()
    # each compaction fires as soon as dead entries outnumber live ones
    # (51 of 100, then 25 of 49, ...), so only a logarithmic tail of
    # dead entries can remain
    assert len(sim._queue) <= 8
    assert sim._cancelled_count <= 8
    sim.run()
    assert sim.dispatched == 0


def test_default_threshold_keeps_small_queues_lazy():
    """Below ``compact_min`` cancelled entries just linger — small
    simulations never pay a rebuild."""
    sim = Simulator()
    assert sim._compact_min == _COMPACT_MIN
    timeouts = [sim.timeout(10.0 + index) for index in range(100)]
    for timeout in timeouts:
        timeout.cancel()
    assert len(sim._queue) == 100
    assert sim._cancelled_count == 100
    sim.run()
    assert sim.dispatched == 0


def test_compact_min_huge_never_compacts():
    """A huge threshold is pure lazy deletion: every dead entry stays
    until the dispatch loop pops and skips it."""
    sim = Simulator(compact_min=1 << 30)
    timeouts = [sim.timeout(10.0 + index) for index in range(1000)]
    for index, timeout in enumerate(timeouts):
        if index % 5 != 0:  # cancel 800 of 1000
            timeout.cancel()
    assert len(sim._queue) == 1000
    assert sim._cancelled_count == 800
    sim.run()
    assert sim.dispatched == 200
    assert not sim._queue


@pytest.mark.parametrize("compact_min", [0, 1 << 30])
def test_degenerate_thresholds_are_behavior_transparent(compact_min):
    """Same churn, same dispatch schedule, at both degenerate settings:
    compaction may only change queue residency, never what runs when."""
    def schedule(sim):
        order = []
        sim.trace_hook = lambda when, event: order.append(
            (when, type(event).__name__))
        sim.run()
        return order

    baseline = _churn_sim(_COMPACT_MIN)
    degenerate = _churn_sim(compact_min)
    assert schedule(degenerate) == schedule(baseline)
    assert degenerate.dispatched == baseline.dispatched
    assert degenerate.now == baseline.now


def test_steady_state_churn_allocation_is_flat():
    """Allocation regression guard: running the churn must not grow
    memory with the number of dispatched events.  The flat core reuses
    slots, recycles timers, and keeps packed tuples as the only
    per-event heap residue — measured peak above the built simulation
    is ~12 KB regardless of run length; 64 KB is the alarm line."""
    # warm allocator/caches outside the measured window
    warm = _churn_sim(_COMPACT_MIN, pairs=5, msgs=50)
    warm.run()

    peaks = {}
    for msgs in (200, 800):
        tracemalloc.start()
        sim = _churn_sim(_COMPACT_MIN, pairs=10, msgs=msgs)
        built = tracemalloc.get_traced_memory()[0]
        sim.run()
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        assert sim.dispatched == 3 * 10 * msgs + 4 * 10
        peaks[msgs] = peak - built
        assert peaks[msgs] < 64 * 1024, (
            f"churn of {msgs} msgs/pair peaked {peaks[msgs]} bytes "
            f"above the built simulation"
        )
    # the 4x longer run must not allocate proportionally more: flat
    # within 2x covers allocator noise while catching any O(events) leak
    assert peaks[800] < 2 * max(peaks[200], 4096), peaks
