"""Unit tests for the paper-style restartable Timer."""

import pytest

from repro.sim import Simulator, Timer


def test_timer_fires_after_duration():
    sim = Simulator()
    timer = Timer(sim)
    timer.set(5.0)

    def waiter():
        yield timer.wait()
        return sim.now

    proc = sim.process(waiter())
    sim.run()
    assert proc.value == 5.0


def test_timer_rearm_extends_expiry():
    sim = Simulator()
    timer = Timer(sim)
    timer.set(5.0)

    def rearm():
        yield sim.timeout(3.0)
        timer.set(10.0)

    def waiter():
        # Wait issued after re-arm sees the new expiry.
        yield sim.timeout(4.0)
        yield timer.wait()
        return sim.now

    sim.process(rearm())
    proc = sim.process(waiter())
    sim.run()
    assert proc.value == 13.0


def test_rearm_invalidates_outstanding_wait():
    sim = Simulator()
    timer = Timer(sim)
    timer.set(5.0)
    stale = timer.wait()
    timer.set(100.0)
    sim.run(until=50.0)
    assert not stale.triggered


def test_reset_disarms():
    sim = Simulator()
    timer = Timer(sim)
    timer.set(5.0)
    wait = timer.wait()
    timer.reset()
    sim.run(until=10.0)
    assert not wait.triggered
    assert not timer.armed
    assert timer.expiry is None


def test_wait_on_disarmed_timer_never_fires():
    sim = Simulator()
    timer = Timer(sim)
    wait = timer.wait()
    sim.timeout(100.0)
    sim.run()
    assert not wait.triggered


def test_timer_in_select_loop():
    """The paper's idiom: select from receive(...) | T.timeout."""
    sim = Simulator()
    timer = Timer(sim)
    from repro.sim import MessageQueue

    inbox = MessageQueue(sim)
    outcomes = []

    def selector():
        timer.set(10.0)
        while True:
            get = inbox.get()
            tick = timer.wait()
            result = yield sim.any_of([get, tick])
            if get in result:
                outcomes.append(("msg", result[get], sim.now))
            else:
                outcomes.append(("timeout", None, sim.now))
                return

    def feeder():
        yield sim.timeout(2.0)
        inbox.put("hello")
        yield sim.timeout(2.0)
        inbox.put("again")

    sim.process(selector())
    sim.process(feeder())
    sim.run()
    assert outcomes == [
        ("msg", "hello", 2.0),
        ("msg", "again", 4.0),
        ("timeout", None, 10.0),
    ]


def test_negative_duration_rejected():
    sim = Simulator()
    timer = Timer(sim)
    with pytest.raises(ValueError):
        timer.set(-1.0)


def test_armed_property_expires():
    sim = Simulator()
    timer = Timer(sim)
    timer.set(5.0)
    assert timer.armed
    assert timer.expiry == 5.0
    sim.timeout(6.0)
    sim.run()
    assert not timer.armed
