"""Unit tests for MessageQueue mailboxes."""

from repro.sim import MessageQueue, Simulator


def test_put_then_get_is_immediate():
    sim = Simulator()
    queue = MessageQueue(sim)
    queue.put("a")

    def getter():
        item = yield queue.get()
        return (item, sim.now)

    proc = sim.process(getter())
    sim.run()
    assert proc.value == ("a", 0.0)


def test_get_blocks_until_put():
    sim = Simulator()
    queue = MessageQueue(sim)

    def getter():
        item = yield queue.get()
        return (item, sim.now)

    def putter():
        yield sim.timeout(3.0)
        queue.put("late")

    proc = sim.process(getter())
    sim.process(putter())
    sim.run()
    assert proc.value == ("late", 3.0)


def test_fifo_order_items_and_waiters():
    sim = Simulator()
    queue = MessageQueue(sim)
    got = []

    def getter(tag):
        item = yield queue.get()
        got.append((tag, item))

    sim.process(getter("first"))
    sim.process(getter("second"))

    def putter():
        yield sim.timeout(1.0)
        queue.put(1)
        queue.put(2)

    sim.process(putter())
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_cancelled_get_does_not_steal_items():
    sim = Simulator()
    queue = MessageQueue(sim)

    def racer():
        get = queue.get()
        tick = sim.timeout(1.0)
        result = yield sim.any_of([get, tick])
        assert get not in result
        # The cancelled get must not consume this later item.
        queue.put("item")
        item = yield queue.get()
        return item

    proc = sim.process(racer())
    sim.run()
    assert proc.value == "item"


def test_get_matching_filters_synchronously():
    sim = Simulator()
    queue = MessageQueue(sim)
    queue.put(1)
    queue.put(2)
    queue.put(3)
    assert queue.get_matching(lambda x: x == 2) == 2
    assert queue.peek_all() == [1, 3]
    assert queue.get_matching(lambda x: x == 99) is None


def test_clear_drops_items_and_orphans_waiters():
    sim = Simulator()
    queue = MessageQueue(sim)
    queue.put("x")
    pending = queue.get.__self__.get() if False else None  # noqa: F841
    waiter_fired = []

    def getter():
        item = yield queue.get()
        waiter_fired.append(item)

    queue.clear()
    sim.process(getter())
    sim.run(until=1.0)
    queue.clear()
    queue.put("y")  # waiter was orphaned; item stays queued
    assert waiter_fired == []
    assert queue.peek_all() == ["y"]
    assert len(queue) == 1


def test_simultaneous_multi_queue_race_loses_no_items():
    """Regression: two mailboxes firing at the same instant inside one
    AnyOf must not drop the loser's item — it goes back to its queue."""
    sim = Simulator()
    qa, qb = MessageQueue(sim, "a"), MessageQueue(sim, "b")
    seen = []

    def dispatcher():
        while True:
            get_a, get_b = qa.get(), qb.get()
            fired = yield sim.any_of([get_a, get_b])
            if get_a in fired:
                seen.append(("a", fired[get_a]))
            if get_b in fired:
                seen.append(("b", fired[get_b]))

    def feeder():
        yield sim.timeout(1.0)
        qa.put("item-a")
        qb.put("item-b")  # same instant

    sim.process(dispatcher())
    sim.process(feeder())
    sim.run(until=10.0)
    assert sorted(seen) == [("a", "item-a"), ("b", "item-b")]


def test_pushed_back_item_keeps_fifo_position():
    sim = Simulator()
    qa, qb = MessageQueue(sim, "a"), MessageQueue(sim, "b")
    order = []

    def dispatcher():
        while True:
            get_a, get_b = qa.get(), qb.get()
            fired = yield sim.any_of([get_a, get_b])
            for get, tag in ((get_a, "a"), (get_b, "b")):
                if get in fired:
                    order.append((tag, fired[get]))

    def feeder():
        yield sim.timeout(1.0)
        qb.put("b1")
        qb.put("b2")
        qa.put("a1")

    sim.process(dispatcher())
    sim.process(feeder())
    sim.run(until=10.0)
    assert [item for tag, item in order if tag == "b"] == ["b1", "b2"]
    assert ("a", "a1") in order
