"""Unit tests for named random substreams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("latency")
    b = RandomStreams(7).stream("latency")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = [streams.stream("latency").random() for _ in range(5)]
    b = [streams.stream("failures").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_draws_in_one_stream_do_not_shift_another():
    lhs = RandomStreams(7)
    lhs.stream("noise").random()
    lhs.stream("noise").random()
    value_after_noise = lhs.stream("signal").random()

    rhs = RandomStreams(7)
    value_without_noise = rhs.stream("signal").random()
    assert value_after_noise == value_without_noise


def test_fork_is_independent_and_reproducible():
    parent = RandomStreams(7)
    child_a = parent.fork("worker")
    child_b = RandomStreams(7).fork("worker")
    assert child_a.stream("s").random() == child_b.stream("s").random()
    assert parent.stream("s").random() != RandomStreams(8).stream("s").random()


def test_different_seeds_differ():
    assert (RandomStreams(1).stream("s").random()
            != RandomStreams(2).stream("s").random())
