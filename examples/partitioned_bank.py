"""A replicated bank that survives a datacenter split.

Three branches (pairs of processors) replicate two accounts.  Mid-run,
the network splits the branches 4 | 2.  Transfers keep committing on
the majority side, the minority's transfers abort instead of forking
the ledger, and after the heal every copy agrees and the money adds up
— the exact scenario the paper's majority + read-one/write-all rules
are designed for.

Run:  python examples/partitioned_bank.py
"""

from repro import Cluster, TransactionAborted

BRANCH_A, BRANCH_B, BRANCH_C = (1, 2), (3, 4), (5, 6)
ALL = [*BRANCH_A, *BRANCH_B, *BRANCH_C]

cluster = Cluster(processors=6, seed=7)
cluster.place("alice", holders=ALL, initial=1000)
cluster.place("bob", holders=ALL, initial=1000)
cluster.start()


def transfer(amount):
    def body(txn):
        source = yield from txn.read("alice")
        if source < amount:
            raise ValueError("insufficient funds")
        target = yield from txn.read("bob")
        yield from txn.write("alice", source - amount)
        yield from txn.write("bob", target + amount)
        return (source - amount, target + amount)
    return body


def audit(label):
    balances = {}
    for pid in ALL:
        alice, _ = cluster.processor(pid).store.peek("alice")
        bob, _ = cluster.processor(pid).store.peek("bob")
        balances[pid] = (alice, bob)
    print(f"{label}: {balances}")
    return balances


# Normal operation: transfers from two different branches.
for origin, amount in [(1, 100), (3, 50)]:
    outcome = cluster.submit(origin, transfer(amount))
    cluster.run(until=cluster.sim.now + 25.0)
    print(f"transfer {amount} from p{origin}: {outcome.value}")

# The split: branches A+B on one side, branch C on the other.
split_at = cluster.sim.now + 1.0
cluster.injector.partition_at(split_at, [set(BRANCH_A) | set(BRANCH_B),
                                         set(BRANCH_C)])
cluster.run(until=split_at + cluster.config.liveness_bound)

# Majority side (4 of 6 copies) keeps serving...
good = cluster.submit(2, transfer(200))
# ...the minority side cannot reach a majority of copies and aborts.
bad = cluster.submit(5, transfer(999))
cluster.run(until=cluster.sim.now + 30.0)
print(f"majority-side transfer: {good.value}")
print(f"minority-side transfer: {bad.value}")
assert good.value[0] is True
assert bad.value[0] is False

audit("during the split")

# Heal; rule R5 reconciles branch C's stale copies before any read.
heal_at = cluster.sim.now + 1.0
cluster.injector.heal_all_at(heal_at)
cluster.run(until=heal_at + cluster.config.liveness_bound + 10)
balances = audit("after the heal")

# Every copy agrees, and no money was created or destroyed.
assert len(set(balances.values())) == 1
alice, bob = next(iter(balances.values()))
assert alice + bob == 2000, f"conservation violated: {alice} + {bob}"

# The ledger's history is one-copy serializable — the minority abort
# was the price of never forking it.
assert cluster.check_one_copy_serializable()
print(f"final: alice={alice} bob={bob}, total=2000, history is 1SR")
print("partitioned_bank OK")
