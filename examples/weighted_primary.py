"""Weighted copies: keep a primary site writable through any single split.

The paper's majority rule is *weighted* — Example 2's placement uses
weights, and Gifford's observation applies here too: give the primary
site's copy extra votes and the side containing the primary stays
writable in every two-way split, at the price that the other side never
is.

Three sites replicate a configuration object.  With equal weights, a
1-vs-2 split strands the single site; with the primary holding weight
3 of 5, the primary side survives *any* split that contains it —
including being completely alone.

Run:  python examples/weighted_primary.py
"""

from repro import Cluster

PRIMARY, REPLICA_A, REPLICA_B = 1, 2, 3


def demo(weights, label):
    print(f"--- {label} (weights: {weights}) ---")
    cluster = Cluster(processors=3, seed=11)
    cluster.place("config", holders=weights, initial="v1")
    cluster.start()

    # Isolate the primary from both replicas.
    cluster.injector.partition_at(5.0, [{PRIMARY}, {REPLICA_A, REPLICA_B}])
    cluster.run(until=5.0 + cluster.config.liveness_bound)

    primary_write = cluster.write_once(PRIMARY, "config", "v2-from-primary")
    replica_write = cluster.write_once(REPLICA_A, "config", "v2-from-replica")
    cluster.run(until=cluster.sim.now + 40.0)
    print(f"  primary-side write: {primary_write.value}")
    print(f"  replica-side write: {replica_write.value}")

    # Heal and confirm the surviving write propagated everywhere.
    cluster.injector.heal_all_at(cluster.sim.now + 1.0)
    cluster.run(until=cluster.sim.now + cluster.config.liveness_bound + 10)
    values = {pid: cluster.processor(pid).store.peek("config")[0]
              for pid in cluster.pids}
    print(f"  after heal: {values}")
    assert cluster.check_one_copy_serializable()
    return primary_write.value, replica_write.value, values


# Equal weights: the 2-replica side holds the majority; the lone
# primary is stranded.
p_eq, r_eq, values_eq = demo({PRIMARY: 1, REPLICA_A: 1, REPLICA_B: 1},
                             "equal weights")
assert p_eq[0] is False, "lone primary must NOT win with equal weights"
assert r_eq[0] is True
assert set(values_eq.values()) == {"v2-from-replica"}

print()

# Weighted primary: 3 votes of 5 — the primary alone IS the majority.
p_w, r_w, values_w = demo({PRIMARY: 3, REPLICA_A: 1, REPLICA_B: 1},
                          "weighted primary")
assert p_w[0] is True, "weighted primary must stay writable alone"
assert r_w[0] is False, "the replica side must be read-only"
assert set(values_w.values()) == {"v2-from-primary"}

print()
print("Same protocol, same rules — the weights choose which side of a")
print("split keeps the write capability. weighted_primary OK")
