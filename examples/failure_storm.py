"""Survive a failure storm: crashes, link cuts, partitions, re-partitions.

Seven processors, several objects, a workload of small transactions —
and a storm of scripted failures, including the nasty cases the paper
is specifically built for: non-transitive connectivity and
re-partitioning while views are stale.  At the end the recorded history
is audited for one-copy serializability and the S1/S3 properties are
checked directly on the join/depart log.

Run:  python examples/failure_storm.py
"""

from repro import Cluster
from repro.workload import WorkloadGenerator, WorkloadSpec, body_for

N = 7
OBJECTS = [f"obj{i}" for i in range(6)]
DURATION = 900.0

cluster = Cluster(processors=N, seed=1234)
for index, obj in enumerate(OBJECTS):
    holders = [(index + k) % N + 1 for k in range(5)]  # 5 copies each
    cluster.place(obj, holders=holders, initial=0)
cluster.start()

# The storm script.
storm = cluster.injector
storm.crash_at(40.0, 7)
storm.cut_at(80.0, 1, 2)          # non-transitive: 1-2 cut, both reach 3
storm.partition_at(160.0, [{1, 2, 3, 4}, {5, 6}])
storm.recover_at(200.0, 7)        # 7 rejoins... somewhere
storm.partition_at(260.0, [{3, 4, 5}, {1, 2, 6, 7}])  # re-partition
storm.crash_at(320.0, 3)
storm.heal_all_at(400.0)
storm.recover_at(440.0, 3)
storm.cut_at(500.0, 4, 5)
storm.heal_at(560.0, 4, 5)

# Clients at every processor, retrying through the chaos.
def client(pid):
    generator = WorkloadGenerator(
        WorkloadSpec(read_fraction=0.8, ops_per_txn=2,
                     mean_interarrival=15.0),
        OBJECTS, cluster.streams.stream(f"client-{pid}"),
    )
    tm = cluster.tm(pid)
    index = 0
    while cluster.sim.now < DURATION:
        yield cluster.sim.timeout(generator.next_interarrival())
        body = body_for(generator.next_program(), tag=f"p{pid}#{index}")
        index += 1
        yield from tm.run(body, retries=2, backoff=5.0)


for pid in cluster.pids:
    cluster.sim.process(client(pid), name=f"client@{pid}")

cluster.run(until=DURATION + 100.0)

committed = cluster.history.committed()
aborted = cluster.history.aborted()
print(f"storm survived: {len(committed)} committed, "
      f"{len(aborted)} aborted transaction attempts")
print(f"virtual partitions created: {cluster.total_metrics().vp_created}")
print(f"copy recoveries performed (rule R5): "
      f"{cluster.total_metrics().recoveries}")

# Audit S1 (view consistency): every partition has exactly one view.
for vpid in cluster.history.partitions_seen():
    cluster.history.view_of(vpid)  # raises if two views were committed
print("S1 (view consistency) holds for every partition")

# Audit S3 (depart-before-join) directly on the event log.
departs = {}
for time, pid, vpid in cluster.history.departs:
    departs.setdefault((pid, vpid), time)
joins_by_vp = {}
for time, pid, vpid, view in cluster.history.joins:
    joins_by_vp.setdefault(vpid, []).append((time, pid, view))
for vpid, joins in joins_by_vp.items():
    first_join = min(t for t, _, _ in joins)
    view = joins[0][2]
    for other in joins_by_vp:
        if other < vpid:
            for pid in cluster.history.members_of(other) & set(view):
                assert departs.get((pid, other), first_join) <= first_join
print("S3 (serializability of virtual partitions) holds")

# The one that matters: the surviving history is one-copy serializable.
from repro.analysis.one_copy import check_one_copy

result = check_one_copy(cluster.history, exact_limit=14)
assert result.ok is not False, result.violation
print(f"one-copy serializability: "
      f"{'proved (witness found)' if result.ok else 'no violation found'}")
assert cluster.check_serializable()
print("conflict-serializability: holds")
print("failure_storm OK")
