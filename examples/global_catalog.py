"""A read-heavy product catalog across distant sites: why read-one wins.

Five sites on a ring with realistic inter-site distances replicate a
product catalog.  Reads vastly outnumber writes (the paper's "most
applications").  The same workload runs under the virtual partitions
protocol and under Gifford's quorum consensus; the example prints the
cost of a logical read under each — one nearby copy versus a majority
that must include far-away sites.

Run:  python examples/global_catalog.py
"""

from repro import Cluster, DistanceLatency
from repro.net.latency import ring_distances
from repro.protocols import protocol_factory
from repro.workload import ExperimentSpec, WorkloadSpec, run_experiment

SITES = [1, 2, 3, 4, 5]
PRODUCTS = [f"product-{i}" for i in range(8)]


def catalog_latency():
    # neighbours 20ms away, each further hop +40ms (units: 100ms)
    return DistanceLatency(ring_distances(SITES, near=0.2, far_step=0.4),
                           default=1.0, local=0.01)


def run_protocol(name: str):
    spec = ExperimentSpec(
        protocol=name, processors=len(SITES), objects=len(PRODUCTS),
        seed=99, duration=600.0,
        latency=catalog_latency(),
        workload=WorkloadSpec(read_fraction=0.95, ops_per_txn=2,
                              mean_interarrival=12.0),
    )
    return run_experiment(spec)


def main():
    print("workload: 95% reads, 5 sites on a ring, 8 products\n")
    results = {}
    for name in ("virtual-partitions", "quorum"):
        results[name] = run_protocol(name)
    for name, result in results.items():
        print(f"{name}:")
        print(f"  committed transactions : {result.committed}")
        print(f"  physical reads per logical read : "
              f"{result.reads_per_logical_read:.2f}")
        print(f"  physical accesses per operation : "
              f"{result.accesses_per_operation:.2f}")
        print(f"  local reads (served on-site)    : "
              f"{result.metrics.local_reads} of "
              f"{result.metrics.logical_reads}")
        print()

    vp = results["virtual-partitions"]
    quorum = results["quorum"]
    assert vp.reads_per_logical_read == 1.0
    assert quorum.reads_per_logical_read >= 3.0
    # With full replication, every read is served by the local copy.
    assert vp.metrics.local_reads == vp.metrics.logical_reads
    speedup = (quorum.accesses_per_operation / vp.accesses_per_operation)
    print(f"virtual partitions does the same work with "
          f"{speedup:.1f}x fewer physical accesses per operation")
    print("global_catalog OK")


if __name__ == "__main__":
    main()
