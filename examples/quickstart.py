"""Quickstart: replicate an object, partition the network, watch the
protocol adapt — in about forty lines.

Run:  python examples/quickstart.py
"""

from repro import Cluster

# Five processors, a counter replicated on all of them.
cluster = Cluster(processors=5, seed=42)
cluster.place("counter", holders=[1, 2, 3, 4, 5], initial=0)
cluster.start()


# A transaction is a generator: reads and writes via `yield from`.
def increment(txn):
    value = yield from txn.read("counter")
    yield from txn.write("counter", value + 1)
    return value + 1


# Healthy cluster: the increment commits, reading only the LOCAL copy.
outcome = cluster.submit(1, increment)
cluster.run(until=30.0)
committed, value = outcome.value
print(f"healthy increment: committed={committed}, counter={value}")

# Partition {1,2,3} from {4,5}.  The protocol detects it via probing and
# forms two virtual partitions within Delta = pi + 8*delta time units.
cluster.injector.partition_at(31.0, [{1, 2, 3}, {4, 5}])
cluster.run(until=31.0 + cluster.config.liveness_bound)
print(f"p1 view after partition: {sorted(cluster.protocol(1).view)}")
print(f"p4 view after partition: {sorted(cluster.protocol(4).view)}")

# The majority side can still increment; the minority cannot (rule R1).
majority = cluster.submit(1, increment)
minority = cluster.submit(4, increment)
cluster.run(until=cluster.sim.now + 30.0)
print(f"majority increment: {majority.value}")
print(f"minority increment: {minority.value}")

# Heal.  The sides merge into a fresh virtual partition and rule R5
# brings p4/p5's stale copies up to date before anyone may read them.
cluster.injector.heal_all_at(cluster.sim.now + 1.0)
cluster.run(until=cluster.sim.now + cluster.config.liveness_bound + 10)
value, _date = cluster.processor(4).store.peek("counter")
print(f"p4's copy after heal: {value}")

# Every run records a full history; audit it.
print(f"one-copy serializable: {cluster.check_one_copy_serializable()}")
print(f"conflict-serializable: {cluster.check_serializable()}")

assert value == 2
assert cluster.check_one_copy_serializable()
print("quickstart OK")
